#include "arch/toolchain.hpp"

#include "util/error.hpp"

#include <map>

namespace armstice::arch {
namespace {

// Vectorisation quality per (vendor, system) at O3: the fraction of peak
// vector throughput a typical compiled loop nest achieves. These are the
// toolchain-level inputs to CostModel::phase_time; application-specific
// residual efficiency lives in calibration.cpp. Anchors:
//  - Fujitsu 1.2.x without -Kfast barely vectorises reduction-heavy Fortran
//    (Table VI: Nekbone jumps 1.78x with -Kfast) -> low base, higher fast.
//  - Intel 17/19 on its own hardware is the mature reference -> 0.80.
//  - GCC 8 on ThunderX2 with NEON is solid but narrow -> 0.75.
//  - Arm Clang 19/20 similar to GCC on TX2 -> 0.75.
//  - GCC/Cray on x86 slightly below Intel -> 0.70.
constexpr double kVqFujitsuO3 = 0.35;
constexpr double kVqFujitsuFast = 0.62;
constexpr double kVqIntel = 0.80;
constexpr double kVqGnuX86 = 0.70;
constexpr double kVqGnuArm = 0.75;
constexpr double kVqArmClang = 0.75;
constexpr double kVqCray = 0.75;

Toolchain make(CompilerVendor vendor, std::string compiler, std::string flags,
               std::vector<std::string> libs, double vq, bool fastmath) {
    Toolchain tc;
    tc.vendor = vendor;
    tc.compiler = std::move(compiler);
    tc.flags = std::move(flags);
    tc.libraries = std::move(libs);
    tc.vec_quality = vq;
    tc.fastmath = fastmath;
    return tc;
}

// Table II, transcribed. Key: system + "/" + app.
const std::map<std::string, Toolchain>& table2() {
    static const std::map<std::string, Toolchain> t = {
        // ---- HPCG ----
        {"A64FX/hpcg",
         make(CompilerVendor::fujitsu, "Fujitsu 1.2.24", "-Nnoclang -O3 -Kfast",
              {"Fujitsu MPI"}, kVqFujitsuFast, true)},
        {"ARCHER/hpcg",
         make(CompilerVendor::intel, "Intel 17", "-O3", {"Cray MPI"}, kVqIntel, false)},
        {"Cirrus/hpcg",
         make(CompilerVendor::intel, "Intel 17", "-O3 -cxx=icpc -qopt-zmm-usage=high",
              {"HPE MPI"}, kVqIntel, false)},
        {"EPCC NGIO/hpcg",
         make(CompilerVendor::intel, "Intel 19",
              "-O3 -cxx=icpc -xCore-AVX512 -qopt-zmm-usage=high", {"Intel MPI"},
              kVqIntel, false)},
        {"Fulhame/hpcg",
         make(CompilerVendor::gnu, "GCC 8.2",
              "-O3 -ffast-math -funroll-loops -std=c++11 -ffp-contract=fast -mcpu=native",
              {"OpenMPI"}, kVqGnuArm, true)},
        // ---- minikab ----
        {"A64FX/minikab",
         make(CompilerVendor::fujitsu, "Fujitsu 1.2.25",
              "-O3 -Kopenmp -Kfast -KA64FX -KSVE -KARMV8_3_A -Kassume=noshortloop "
              "-Kassume=memory_bandwidth -Kassume=notime_saving_compilation",
              {"Fujitsu MPI"}, kVqFujitsuFast, true)},
        {"EPCC NGIO/minikab",
         make(CompilerVendor::intel, "Intel 19", "-O3 -warn all",
              {"Intel MPI library"}, kVqIntel, false)},
        {"Fulhame/minikab",
         make(CompilerVendor::armclang, "Arm Clang 20", "-O3 -armpl -mcpu=native -fopenmp",
              {"OpenMPI", "ArmPL"}, kVqArmClang, false)},
        // ---- nekbone ----
        {"A64FX/nekbone",
         make(CompilerVendor::fujitsu, "Fujitsu 1.2.24",
              "-CcdRR8 -Cpp -Fixed -O3 -Kfast -KA64FX -KSVE -KARMV8_3_A "
              "-Kassume=noshortloop -Kassume=memory_bandwidth "
              "-Kassume=notime_saving_compilation",
              {"Fujitsu MPI"}, kVqFujitsuFast, true)},
        {"ARCHER/nekbone",
         make(CompilerVendor::gnu, "GCC 6.3", "-fdefault-real-8 -O3",
              {"Cray MPICH2 library 7.5.5"}, kVqGnuX86, false)},
        {"EPCC NGIO/nekbone",
         make(CompilerVendor::intel, "Intel 19.03", "-fdefault-real-8 -O3",
              {"Intel MPI 19.3"}, kVqIntel, false)},
        {"Fulhame/nekbone",
         make(CompilerVendor::gnu, "GNU 8.2", "-fdefault-real-8 -O3",
              {"OpenMPI 4.0.2"}, kVqGnuArm, false)},
        // ---- CASTEP ----
        {"A64FX/castep",
         make(CompilerVendor::fujitsu, "Fujitsu 1.2.24", "-O3",
              {"Fujitsu MPI", "Fujitsu SSL2", "FFTW 3.3.3"}, kVqFujitsuO3, false)},
        {"ARCHER/castep",
         make(CompilerVendor::gnu, "GCC 6.2",
              "-fconvert=big-endian -fno-realloc-lhs -fopenmp -fPIC -O3 "
              "-funroll-loops -ftree-loop-distribution -g -fbacktrace",
              {"Cray MPICH2 library 7.5.5", "Intel MKL 17.0.0.098", "FFTW 3.3.4.11"},
              kVqGnuX86, false)},
        {"Cirrus/castep",
         make(CompilerVendor::intel, "Intel 17", "-O3 -debug minimal -traceback -xHost",
              {"SGI MPT 2.16", "Intel MKL 17", "FFTW 3.3.5"}, kVqIntel, false)},
        {"EPCC NGIO/castep",
         make(CompilerVendor::intel, "Intel 17", "-O3 -debug minimal -traceback -xHost",
              {"Intel MPI library 17.4", "Intel MKL 17.4", "FFTW 3.3.3"}, kVqIntel,
              false)},
        {"Fulhame/castep",
         make(CompilerVendor::gnu, "GCC 8.2",
              "-fconvert=big-endian -fno-realloc-lhs -fopenmp -fPIC -O3 "
              "-funroll-loops -ftree-loop-distribution -g -fbacktrace",
              {"HPE MPT MPI library (v2.20)", "ARM Performance Libraries 19.0.0",
               "FFTW 3.3.8"},
              kVqGnuArm, false)},
        // ---- COSA ----
        {"A64FX/cosa",
         make(CompilerVendor::fujitsu, "Fujitsu 1.2.24",
              "-X9 -Fwide -Cfpp -Cpp -m64 -Ad -O3 -Kfast -KA64FX -KSVE -KARMV8_3_A "
              "-Kassume=noshortloop -Kassume=memory_bandwidth "
              "-Kassume=notime_saving_compilation",
              {"Fujitsu MPI", "Fujitsu SSL2", "FFTW 3.3.3"}, kVqFujitsuFast, true)},
        {"ARCHER/cosa",
         make(CompilerVendor::gnu, "GNU 7.2",
              "-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer "
              "-ftree-vectorize -O3 -ffixed-line-length-132",
              {"Cray MPI library (v7.5.5)", "Cray LibSci (v16.11.1)"}, kVqGnuX86,
              false)},
        {"Cirrus/cosa",
         make(CompilerVendor::gnu, "GNU 8.2",
              "-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer "
              "-ftree-vectorize -O3 -ffixed-line-length-132",
              {"SGI MPT 2.16", "Intel MKL 17.0.2.174"}, kVqGnuX86, false)},
        {"EPCC NGIO/cosa",
         make(CompilerVendor::intel, "Intel 18",
              "-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer "
              "-ftree-vectorize -O3 -ffixed-line-length-132",
              {"Intel MPI", "Intel MKL 18"}, kVqIntel, false)},
        {"Fulhame/cosa",
         make(CompilerVendor::gnu, "GNU 8.2",
              "-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer "
              "-ftree-vectorize -O3 -ffixed-line-length-132",
              {"HPE MPT MPI library (v2.20)", "ARM Performance Libraries (v19.0.0)"},
              kVqGnuArm, false)},
        // ---- OpenSBLI ---- (Table II has no A64FX row; results in Table X
        // imply the Fujitsu toolchain — we use the system fallback for it.)
        {"ARCHER/opensbli",
         make(CompilerVendor::cray, "Cray Compiler v8.5.8", "-O3 -hgnu",
              {"Cray MPICH2 (v7.5.2)", "HDF5 (v1.10.0.1)"}, kVqCray, false)},
        {"Cirrus/opensbli",
         make(CompilerVendor::intel, "Intel 17.0.2.174", "-O3 -ipo -restrict -fno-alias",
              {"SGI MPT 2.16", "HDF5 1.10.1"}, kVqIntel, false)},
        {"EPCC NGIO/opensbli",
         make(CompilerVendor::intel, "Intel 17.4", "-O3 -ipo -restrict -fno-alias",
              {"Intel MPI 17.4", "HDF5 1.10.1"}, kVqIntel, false)},
        {"Fulhame/opensbli",
         make(CompilerVendor::armclang, "Arm Clang 19.0.0", "-O3 -std=c99 -fPIC -Wall",
              {"OpenMPI 4.0.0", "HDF5 1.10.4"}, kVqArmClang, false)},
    };
    return t;
}

// Fallback toolchain per system for (system, app) pairs absent from Table II.
Toolchain system_default(std::string_view system) {
    if (system == "A64FX")
        return make(CompilerVendor::fujitsu, "Fujitsu 1.2.24", "-O3",
                    {"Fujitsu MPI"}, kVqFujitsuO3, false);
    if (system == "ARCHER")
        return make(CompilerVendor::cray, "Cray CCE", "-O3", {"Cray MPI"}, kVqCray, false);
    if (system == "Cirrus")
        return make(CompilerVendor::intel, "Intel 17", "-O3", {"SGI MPT"}, kVqIntel, false);
    if (system == "EPCC NGIO")
        return make(CompilerVendor::intel, "Intel 19", "-O3", {"Intel MPI"}, kVqIntel, false);
    if (system == "Fulhame")
        return make(CompilerVendor::gnu, "GCC 8.2", "-O3", {"OpenMPI"}, kVqGnuArm, false);
    throw util::Error("unknown system: " + std::string(system));
}

} // namespace

std::string Toolchain::vendor_name() const {
    switch (vendor) {
        case CompilerVendor::fujitsu: return "Fujitsu";
        case CompilerVendor::intel: return "Intel";
        case CompilerVendor::gnu: return "GNU";
        case CompilerVendor::armclang: return "Arm Clang";
        case CompilerVendor::cray: return "Cray";
    }
    return "?";
}

Toolchain toolchain_for(std::string_view system, std::string_view app) {
    const auto key = std::string(system) + "/" + std::string(app);
    const auto& t = table2();
    if (const auto it = t.find(key); it != t.end()) return it->second;
    return system_default(system);
}

} // namespace armstice::arch
