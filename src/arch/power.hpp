#pragma once
// Node power model — an extension the paper's introduction motivates (the
// A64FX's Green500 result of 16.876 GFLOPs/W is one of its selling points)
// but its evaluation does not quantify. We model node power as
//
//   P(t) = P_idle + P_dynamic * utilisation(t)
//
// with published TDP-class numbers per system, and expose energy-to-solution
// and GFLOPs/W for any simulated run (bench/ext_energy_efficiency).

#include "arch/system.hpp"

namespace armstice::arch {

struct PowerSpec {
    double idle_w = 0;     ///< node power when cores are idle/waiting
    double dynamic_w = 0;  ///< additional power at full compute utilisation
    double nic_w = 0;      ///< interconnect interface share

    [[nodiscard]] double peak_w() const { return idle_w + dynamic_w + nic_w; }
};

/// Published/TDP-anchored node power for the five systems:
///  * A64FX: ~160 W TDP including HBM2 — the efficiency headline.
///  * ARCHER: 2x E5-2697v2 (130 W) + DDR3.
///  * Cirrus: 2x E5-2695v4 (120 W) + 256 GB DDR4.
///  * NGIO:   2x Platinum 8260M (165 W).
///  * Fulhame: 2x ThunderX2 (~175 W at 2.2 GHz 32c).
PowerSpec power_spec(const SystemSpec& sys);

/// Energy for a simulated run: busy time at peak power, wait time at idle.
/// `busy_seconds` is per-node mean compute time, `total_seconds` makespan.
double node_energy_j(const PowerSpec& p, double busy_seconds, double total_seconds);

/// GFLOPs per watt for a run that executed `flops` over `seconds` on
/// `nodes` nodes (the Green500 metric applied to our benchmarks).
double gflops_per_watt(const SystemSpec& sys, double flops, double busy_seconds,
                       double total_seconds, int nodes);

} // namespace armstice::arch
