#include "arch/cost_model.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::arch {
namespace {

/// Fraction of nominal vector lanes usable under each access pattern.
/// Gather without hardware gather support falls back to scalar element
/// loads; strided access wastes part of each line/vector.
double pattern_vec_factor(MemPattern p, const VectorIsa& isa, bool penalty_on) {
    if (!penalty_on) return 1.0;
    switch (p) {
        case MemPattern::stream: return 1.0;
        case MemPattern::strided: return 0.85;
        case MemPattern::gather: return isa.has_gather ? 0.55 : 0.30;
        case MemPattern::dependent: return 0.15;
    }
    return 1.0;
}

} // namespace

ExecContext threaded_context(const SystemSpec& sys, int jobs, double vec_quality) {
    ARMSTICE_CHECK(jobs >= 1, "threaded_context needs jobs >= 1");
    const NodeSpec& node = sys.node;
    ExecContext ctx;
    ctx.cpu = &node.cpu;
    ctx.vec_quality = vec_quality;
    ctx.threads = std::min(jobs, node.cores());
    // Threads fill one memory domain before spilling into the next, so the
    // per-domain stream count saturates at the domain's core count while the
    // spanned-domain count grows (aggregating bandwidth, as on A64FX CMGs).
    ctx.streams_on_domain = std::min(ctx.threads, node.cores_per_domain());
    ctx.domains_spanned = std::clamp(
        (ctx.threads + node.cores_per_domain() - 1) / node.cores_per_domain(), 1,
        node.mem_domains());
    return ctx;
}

TimeBreakdown CostModel::explain(const ComputePhase& phase, const ExecContext& ctx) const {
    ARMSTICE_CHECK(ctx.cpu != nullptr, "ExecContext.cpu is null");
    ARMSTICE_CHECK(ctx.threads >= 1, "threads >= 1");
    ARMSTICE_CHECK(ctx.streams_on_domain >= 1, "streams_on_domain >= 1");
    ARMSTICE_CHECK(ctx.domains_spanned >= 1, "domains_spanned >= 1");
    ARMSTICE_CHECK(phase.efficiency > 0.0 && phase.efficiency <= 1.5,
                   "phase efficiency out of range: " + phase.label);
    const Processor& cpu = *ctx.cpu;

    // --- Amdahl-effective thread count -----------------------------------
    const double pf = knobs_.amdahl ? phase.parallel_fraction : 1.0;
    const double t_eff =
        1.0 / ((1.0 - pf) + pf / static_cast<double>(ctx.threads));

    TimeBreakdown out;

    // --- Floating-point term ---------------------------------------------
    const double vqp = ctx.vec_quality *
                       pattern_vec_factor(phase.pattern, cpu.isa, knobs_.gather_penalty);
    out.vspeed = std::max(1.0, cpu.isa.dp_lanes() * vqp);
    const double scalar_rate = cpu.freq_hz * cpu.scalar_fpc;  // flops/s/stream
    const double flops_per_stream = phase.flops / t_eff;
    const double vf = std::clamp(phase.vector_fraction, 0.0, 1.0);
    out.t_flops =
        flops_per_stream * (vf / (scalar_rate * out.vspeed) + (1.0 - vf) / scalar_rate);

    // --- Memory term -------------------------------------------------------
    // Domain share under the SPMD contention approximation, then either the
    // ECM per-level decomposition (processors carrying a MemLevel table) or
    // the flat v3 path: single-stream concurrency caps; LLC-resident working
    // sets get LLC bandwidth.
    const bool use_ecm = knobs_.ecm && cpu.levels.size() >= 2;
    double bw = cpu.domain.bandwidth;
    if (knobs_.contention) {
        bw = cpu.domain.bandwidth * ctx.domains_spanned /
             static_cast<double>(ctx.streams_on_domain);
    }
    if (knobs_.core_bw_cap) {
        const double cap = (phase.pattern == MemPattern::gather ||
                            phase.pattern == MemPattern::dependent)
                               ? cpu.core_gather_bw
                               : cpu.core_stream_bw;
        // The caps are end-to-end measurements; the ECM memory leg uses
        // their deconvolved raw-interface equivalent so the serialized leg
        // composition lands back on the measured rate where the cap binds.
        bw = std::min(bw, use_ecm ? EcmModel::deconvolve_cap(cpu, cap) : cap);
    }
    if (phase.pattern == MemPattern::dependent) {
        // Serial dependency chains: one line per latency (also end-to-end).
        const double clamp = util::cache_line / cpu.domain.latency_s;
        bw = std::min(bw, use_ecm ? EcmModel::deconvolve_cap(cpu, clamp) : clamp);
    }
    const double ranks_on_llc =
        std::max(1.0, static_cast<double>(ctx.streams_on_domain) / ctx.threads);
    const double bytes_per_stream = phase.main_bytes / t_eff;
    if (use_ecm) {
        const int residence =
            knobs_.cache_model
                ? EcmModel::residence_level(cpu, phase.working_set, ranks_on_llc)
                : static_cast<int>(cpu.levels.size()) - 1;
        out.ecm = EcmModel::decompose(cpu, bytes_per_stream, residence, bw);
        out.t_mem = out.ecm.t_data;
        out.bw_per_stream =
            out.t_mem > 0.0 ? bytes_per_stream / out.t_mem : bw;
    } else {
        if (knobs_.cache_model && phase.working_set > 0.0) {
            // A rank's working set is shared with the other ranks resident on
            // the same LLC; if everything fits, the phase streams from cache.
            if (phase.working_set * ranks_on_llc <= cpu.llc.capacity_bytes) {
                bw = std::max(bw, cpu.llc.bw_per_core);
            }
        }
        out.bw_per_stream = bw;
        out.t_mem = bytes_per_stream / bw;
    }

    // --- LLC traffic term ---------------------------------------------------
    out.t_cache = (phase.cache_bytes / t_eff) / cpu.llc.bw_per_core;

    // --- Serialized latency term -------------------------------------------
    out.t_latency = (phase.latency_ops / t_eff) * cpu.domain.latency_s;

    out.t_overhead = phase.overhead_s;
    out.total = (std::max(out.t_flops, out.t_mem) + out.t_cache + out.t_latency) /
                    phase.efficiency +
                out.t_overhead;
    return out;
}

} // namespace armstice::arch
