# Empty dependencies file for example_custom_system.
# This may be replaced when dependencies are built.
