file(REMOVE_RECURSE
  "CMakeFiles/example_custom_system.dir/custom_system.cpp.o"
  "CMakeFiles/example_custom_system.dir/custom_system.cpp.o.d"
  "example_custom_system"
  "example_custom_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
