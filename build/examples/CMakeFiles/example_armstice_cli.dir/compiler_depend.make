# Empty compiler generated dependencies file for example_armstice_cli.
# This may be replaced when dependencies are built.
