file(REMOVE_RECURSE
  "CMakeFiles/example_armstice_cli.dir/armstice_cli.cpp.o"
  "CMakeFiles/example_armstice_cli.dir/armstice_cli.cpp.o.d"
  "example_armstice_cli"
  "example_armstice_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_armstice_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
