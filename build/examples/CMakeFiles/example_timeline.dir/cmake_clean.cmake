file(REMOVE_RECURSE
  "CMakeFiles/example_timeline.dir/timeline.cpp.o"
  "CMakeFiles/example_timeline.dir/timeline.cpp.o.d"
  "example_timeline"
  "example_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
