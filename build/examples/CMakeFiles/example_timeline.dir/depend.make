# Empty dependencies file for example_timeline.
# This may be replaced when dependencies are built.
