# Empty dependencies file for example_real_kernels.
# This may be replaced when dependencies are built.
