file(REMOVE_RECURSE
  "CMakeFiles/example_real_kernels.dir/real_kernels.cpp.o"
  "CMakeFiles/example_real_kernels.dir/real_kernels.cpp.o.d"
  "example_real_kernels"
  "example_real_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_real_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
