# Empty compiler generated dependencies file for example_port_an_application.
# This may be replaced when dependencies are built.
