file(REMOVE_RECURSE
  "CMakeFiles/example_port_an_application.dir/port_an_application.cpp.o"
  "CMakeFiles/example_port_an_application.dir/port_an_application.cpp.o.d"
  "example_port_an_application"
  "example_port_an_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_port_an_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
