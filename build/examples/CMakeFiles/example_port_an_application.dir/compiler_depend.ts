# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_port_an_application.
