
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/castep/castep.cpp" "src/CMakeFiles/armstice_apps.dir/apps/castep/castep.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/castep/castep.cpp.o.d"
  "/root/repo/src/apps/common.cpp" "src/CMakeFiles/armstice_apps.dir/apps/common.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/common.cpp.o.d"
  "/root/repo/src/apps/cosa/cosa.cpp" "src/CMakeFiles/armstice_apps.dir/apps/cosa/cosa.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/cosa/cosa.cpp.o.d"
  "/root/repo/src/apps/hpcg/hpcg.cpp" "src/CMakeFiles/armstice_apps.dir/apps/hpcg/hpcg.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/hpcg/hpcg.cpp.o.d"
  "/root/repo/src/apps/minikab/minikab.cpp" "src/CMakeFiles/armstice_apps.dir/apps/minikab/minikab.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/minikab/minikab.cpp.o.d"
  "/root/repo/src/apps/nekbone/nekbone.cpp" "src/CMakeFiles/armstice_apps.dir/apps/nekbone/nekbone.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/nekbone/nekbone.cpp.o.d"
  "/root/repo/src/apps/opensbli/opensbli.cpp" "src/CMakeFiles/armstice_apps.dir/apps/opensbli/opensbli.cpp.o" "gcc" "src/CMakeFiles/armstice_apps.dir/apps/opensbli/opensbli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
