# Empty compiler generated dependencies file for armstice_apps.
# This may be replaced when dependencies are built.
