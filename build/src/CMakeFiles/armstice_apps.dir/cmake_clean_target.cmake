file(REMOVE_RECURSE
  "libarmstice_apps.a"
)
