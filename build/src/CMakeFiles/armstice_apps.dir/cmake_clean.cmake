file(REMOVE_RECURSE
  "CMakeFiles/armstice_apps.dir/apps/castep/castep.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/castep/castep.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/common.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/common.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/cosa/cosa.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/cosa/cosa.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/hpcg/hpcg.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/hpcg/hpcg.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/minikab/minikab.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/minikab/minikab.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/nekbone/nekbone.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/nekbone/nekbone.cpp.o.d"
  "CMakeFiles/armstice_apps.dir/apps/opensbli/opensbli.cpp.o"
  "CMakeFiles/armstice_apps.dir/apps/opensbli/opensbli.cpp.o.d"
  "libarmstice_apps.a"
  "libarmstice_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
