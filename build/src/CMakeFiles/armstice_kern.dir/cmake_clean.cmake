file(REMOVE_RECURSE
  "CMakeFiles/armstice_kern.dir/kern/dense/blas.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/dense/blas.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/dense/eigen.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/dense/eigen.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/fft/fft.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/fft/fft.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/mesh/blocks.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/mesh/blocks.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/nek/spectral.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/nek/spectral.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/sparse/cg.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/sparse/cg.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/sparse/csr.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/sparse/csr.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/sparse/ell.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/sparse/ell.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/sparse/multigrid.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/sparse/multigrid.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/sparse/sell.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/sparse/sell.cpp.o.d"
  "CMakeFiles/armstice_kern.dir/kern/stencil/taylor_green.cpp.o"
  "CMakeFiles/armstice_kern.dir/kern/stencil/taylor_green.cpp.o.d"
  "libarmstice_kern.a"
  "libarmstice_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
