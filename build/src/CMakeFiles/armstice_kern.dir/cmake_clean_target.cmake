file(REMOVE_RECURSE
  "libarmstice_kern.a"
)
