
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/dense/blas.cpp" "src/CMakeFiles/armstice_kern.dir/kern/dense/blas.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/dense/blas.cpp.o.d"
  "/root/repo/src/kern/dense/eigen.cpp" "src/CMakeFiles/armstice_kern.dir/kern/dense/eigen.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/dense/eigen.cpp.o.d"
  "/root/repo/src/kern/fft/fft.cpp" "src/CMakeFiles/armstice_kern.dir/kern/fft/fft.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/fft/fft.cpp.o.d"
  "/root/repo/src/kern/mesh/blocks.cpp" "src/CMakeFiles/armstice_kern.dir/kern/mesh/blocks.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/mesh/blocks.cpp.o.d"
  "/root/repo/src/kern/nek/spectral.cpp" "src/CMakeFiles/armstice_kern.dir/kern/nek/spectral.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/nek/spectral.cpp.o.d"
  "/root/repo/src/kern/sparse/cg.cpp" "src/CMakeFiles/armstice_kern.dir/kern/sparse/cg.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/sparse/cg.cpp.o.d"
  "/root/repo/src/kern/sparse/csr.cpp" "src/CMakeFiles/armstice_kern.dir/kern/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/sparse/csr.cpp.o.d"
  "/root/repo/src/kern/sparse/ell.cpp" "src/CMakeFiles/armstice_kern.dir/kern/sparse/ell.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/sparse/ell.cpp.o.d"
  "/root/repo/src/kern/sparse/multigrid.cpp" "src/CMakeFiles/armstice_kern.dir/kern/sparse/multigrid.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/sparse/multigrid.cpp.o.d"
  "/root/repo/src/kern/sparse/sell.cpp" "src/CMakeFiles/armstice_kern.dir/kern/sparse/sell.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/sparse/sell.cpp.o.d"
  "/root/repo/src/kern/stencil/taylor_green.cpp" "src/CMakeFiles/armstice_kern.dir/kern/stencil/taylor_green.cpp.o" "gcc" "src/CMakeFiles/armstice_kern.dir/kern/stencil/taylor_green.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
