# Empty compiler generated dependencies file for armstice_kern.
# This may be replaced when dependencies are built.
