file(REMOVE_RECURSE
  "CMakeFiles/armstice_net.dir/net/collectives.cpp.o"
  "CMakeFiles/armstice_net.dir/net/collectives.cpp.o.d"
  "CMakeFiles/armstice_net.dir/net/network.cpp.o"
  "CMakeFiles/armstice_net.dir/net/network.cpp.o.d"
  "CMakeFiles/armstice_net.dir/net/topology.cpp.o"
  "CMakeFiles/armstice_net.dir/net/topology.cpp.o.d"
  "libarmstice_net.a"
  "libarmstice_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
