
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/collectives.cpp" "src/CMakeFiles/armstice_net.dir/net/collectives.cpp.o" "gcc" "src/CMakeFiles/armstice_net.dir/net/collectives.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/armstice_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/armstice_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/armstice_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/armstice_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
