file(REMOVE_RECURSE
  "libarmstice_net.a"
)
