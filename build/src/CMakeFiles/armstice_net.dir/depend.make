# Empty dependencies file for armstice_net.
# This may be replaced when dependencies are built.
