# Empty compiler generated dependencies file for armstice_simmpi.
# This may be replaced when dependencies are built.
