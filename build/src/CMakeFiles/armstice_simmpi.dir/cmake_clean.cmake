file(REMOVE_RECURSE
  "CMakeFiles/armstice_simmpi.dir/simmpi/minimpi.cpp.o"
  "CMakeFiles/armstice_simmpi.dir/simmpi/minimpi.cpp.o.d"
  "libarmstice_simmpi.a"
  "libarmstice_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
