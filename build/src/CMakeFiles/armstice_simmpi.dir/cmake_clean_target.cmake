file(REMOVE_RECURSE
  "libarmstice_simmpi.a"
)
