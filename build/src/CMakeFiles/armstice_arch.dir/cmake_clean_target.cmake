file(REMOVE_RECURSE
  "libarmstice_arch.a"
)
