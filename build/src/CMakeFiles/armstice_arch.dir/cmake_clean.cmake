file(REMOVE_RECURSE
  "CMakeFiles/armstice_arch.dir/arch/calibration.cpp.o"
  "CMakeFiles/armstice_arch.dir/arch/calibration.cpp.o.d"
  "CMakeFiles/armstice_arch.dir/arch/cost_model.cpp.o"
  "CMakeFiles/armstice_arch.dir/arch/cost_model.cpp.o.d"
  "CMakeFiles/armstice_arch.dir/arch/power.cpp.o"
  "CMakeFiles/armstice_arch.dir/arch/power.cpp.o.d"
  "CMakeFiles/armstice_arch.dir/arch/system_catalog.cpp.o"
  "CMakeFiles/armstice_arch.dir/arch/system_catalog.cpp.o.d"
  "CMakeFiles/armstice_arch.dir/arch/toolchain.cpp.o"
  "CMakeFiles/armstice_arch.dir/arch/toolchain.cpp.o.d"
  "libarmstice_arch.a"
  "libarmstice_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
