# Empty compiler generated dependencies file for armstice_arch.
# This may be replaced when dependencies are built.
