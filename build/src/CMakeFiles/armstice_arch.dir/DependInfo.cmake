
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/calibration.cpp" "src/CMakeFiles/armstice_arch.dir/arch/calibration.cpp.o" "gcc" "src/CMakeFiles/armstice_arch.dir/arch/calibration.cpp.o.d"
  "/root/repo/src/arch/cost_model.cpp" "src/CMakeFiles/armstice_arch.dir/arch/cost_model.cpp.o" "gcc" "src/CMakeFiles/armstice_arch.dir/arch/cost_model.cpp.o.d"
  "/root/repo/src/arch/power.cpp" "src/CMakeFiles/armstice_arch.dir/arch/power.cpp.o" "gcc" "src/CMakeFiles/armstice_arch.dir/arch/power.cpp.o.d"
  "/root/repo/src/arch/system_catalog.cpp" "src/CMakeFiles/armstice_arch.dir/arch/system_catalog.cpp.o" "gcc" "src/CMakeFiles/armstice_arch.dir/arch/system_catalog.cpp.o.d"
  "/root/repo/src/arch/toolchain.cpp" "src/CMakeFiles/armstice_arch.dir/arch/toolchain.cpp.o" "gcc" "src/CMakeFiles/armstice_arch.dir/arch/toolchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
