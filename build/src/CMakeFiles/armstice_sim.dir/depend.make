# Empty dependencies file for armstice_sim.
# This may be replaced when dependencies are built.
