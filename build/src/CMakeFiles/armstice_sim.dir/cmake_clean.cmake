file(REMOVE_RECURSE
  "CMakeFiles/armstice_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/armstice_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/armstice_sim.dir/sim/placement.cpp.o"
  "CMakeFiles/armstice_sim.dir/sim/placement.cpp.o.d"
  "CMakeFiles/armstice_sim.dir/sim/program.cpp.o"
  "CMakeFiles/armstice_sim.dir/sim/program.cpp.o.d"
  "CMakeFiles/armstice_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/armstice_sim.dir/sim/trace.cpp.o.d"
  "libarmstice_sim.a"
  "libarmstice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
