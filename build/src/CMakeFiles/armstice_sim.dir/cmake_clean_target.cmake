file(REMOVE_RECURSE
  "libarmstice_sim.a"
)
