# Empty compiler generated dependencies file for armstice_sim.
# This may be replaced when dependencies are built.
