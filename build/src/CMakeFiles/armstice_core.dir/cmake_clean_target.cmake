file(REMOVE_RECURSE
  "libarmstice_core.a"
)
