# Empty dependencies file for armstice_core.
# This may be replaced when dependencies are built.
