file(REMOVE_RECURSE
  "CMakeFiles/armstice_core.dir/core/experiments.cpp.o"
  "CMakeFiles/armstice_core.dir/core/experiments.cpp.o.d"
  "CMakeFiles/armstice_core.dir/core/report.cpp.o"
  "CMakeFiles/armstice_core.dir/core/report.cpp.o.d"
  "CMakeFiles/armstice_core.dir/core/score.cpp.o"
  "CMakeFiles/armstice_core.dir/core/score.cpp.o.d"
  "libarmstice_core.a"
  "libarmstice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
