
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/armstice_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/armstice_util.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/armstice_util.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/error.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/armstice_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/plot.cpp" "src/CMakeFiles/armstice_util.dir/util/plot.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/plot.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/armstice_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/svg.cpp" "src/CMakeFiles/armstice_util.dir/util/svg.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/svg.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/armstice_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/armstice_util.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
