# Empty compiler generated dependencies file for armstice_util.
# This may be replaced when dependencies are built.
