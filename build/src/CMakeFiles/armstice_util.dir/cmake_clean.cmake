file(REMOVE_RECURSE
  "CMakeFiles/armstice_util.dir/util/cli.cpp.o"
  "CMakeFiles/armstice_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/csv.cpp.o"
  "CMakeFiles/armstice_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/error.cpp.o"
  "CMakeFiles/armstice_util.dir/util/error.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/log.cpp.o"
  "CMakeFiles/armstice_util.dir/util/log.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/plot.cpp.o"
  "CMakeFiles/armstice_util.dir/util/plot.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/stats.cpp.o"
  "CMakeFiles/armstice_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/svg.cpp.o"
  "CMakeFiles/armstice_util.dir/util/svg.cpp.o.d"
  "CMakeFiles/armstice_util.dir/util/table.cpp.o"
  "CMakeFiles/armstice_util.dir/util/table.cpp.o.d"
  "libarmstice_util.a"
  "libarmstice_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armstice_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
