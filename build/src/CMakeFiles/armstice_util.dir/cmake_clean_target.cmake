file(REMOVE_RECURSE
  "libarmstice_util.a"
)
