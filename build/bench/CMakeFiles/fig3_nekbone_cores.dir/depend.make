# Empty dependencies file for fig3_nekbone_cores.
# This may be replaced when dependencies are built.
