file(REMOVE_RECURSE
  "CMakeFiles/fig3_nekbone_cores.dir/fig3_nekbone_cores.cpp.o"
  "CMakeFiles/fig3_nekbone_cores.dir/fig3_nekbone_cores.cpp.o.d"
  "fig3_nekbone_cores"
  "fig3_nekbone_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nekbone_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
