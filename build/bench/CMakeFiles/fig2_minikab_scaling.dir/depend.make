# Empty dependencies file for fig2_minikab_scaling.
# This may be replaced when dependencies are built.
