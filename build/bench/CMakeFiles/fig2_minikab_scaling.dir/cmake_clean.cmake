file(REMOVE_RECURSE
  "CMakeFiles/fig2_minikab_scaling.dir/fig2_minikab_scaling.cpp.o"
  "CMakeFiles/fig2_minikab_scaling.dir/fig2_minikab_scaling.cpp.o.d"
  "fig2_minikab_scaling"
  "fig2_minikab_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_minikab_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
