# Empty dependencies file for table3_hpcg_single_node.
# This may be replaced when dependencies are built.
