file(REMOVE_RECURSE
  "CMakeFiles/table3_hpcg_single_node.dir/table3_hpcg_single_node.cpp.o"
  "CMakeFiles/table3_hpcg_single_node.dir/table3_hpcg_single_node.cpp.o.d"
  "table3_hpcg_single_node"
  "table3_hpcg_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hpcg_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
