file(REMOVE_RECURSE
  "CMakeFiles/fig1_minikab_configs.dir/fig1_minikab_configs.cpp.o"
  "CMakeFiles/fig1_minikab_configs.dir/fig1_minikab_configs.cpp.o.d"
  "fig1_minikab_configs"
  "fig1_minikab_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_minikab_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
