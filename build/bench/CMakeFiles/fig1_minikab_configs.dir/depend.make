# Empty dependencies file for fig1_minikab_configs.
# This may be replaced when dependencies are built.
