file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_efficiency.dir/ext_energy_efficiency.cpp.o"
  "CMakeFiles/ext_energy_efficiency.dir/ext_energy_efficiency.cpp.o.d"
  "ext_energy_efficiency"
  "ext_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
