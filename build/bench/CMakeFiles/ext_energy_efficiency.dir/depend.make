# Empty dependencies file for ext_energy_efficiency.
# This may be replaced when dependencies are built.
