# Empty dependencies file for ext_tofu_topology.
# This may be replaced when dependencies are built.
