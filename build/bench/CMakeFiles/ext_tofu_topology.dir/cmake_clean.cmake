file(REMOVE_RECURSE
  "CMakeFiles/ext_tofu_topology.dir/ext_tofu_topology.cpp.o"
  "CMakeFiles/ext_tofu_topology.dir/ext_tofu_topology.cpp.o.d"
  "ext_tofu_topology"
  "ext_tofu_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tofu_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
