file(REMOVE_RECURSE
  "CMakeFiles/table5_minikab_single_core.dir/table5_minikab_single_core.cpp.o"
  "CMakeFiles/table5_minikab_single_core.dir/table5_minikab_single_core.cpp.o.d"
  "table5_minikab_single_core"
  "table5_minikab_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_minikab_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
