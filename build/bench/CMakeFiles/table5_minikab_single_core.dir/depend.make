# Empty dependencies file for table5_minikab_single_core.
# This may be replaced when dependencies are built.
