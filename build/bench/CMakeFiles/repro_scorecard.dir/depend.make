# Empty dependencies file for repro_scorecard.
# This may be replaced when dependencies are built.
