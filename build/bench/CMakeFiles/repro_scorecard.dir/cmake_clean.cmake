file(REMOVE_RECURSE
  "CMakeFiles/repro_scorecard.dir/repro_scorecard.cpp.o"
  "CMakeFiles/repro_scorecard.dir/repro_scorecard.cpp.o.d"
  "repro_scorecard"
  "repro_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
