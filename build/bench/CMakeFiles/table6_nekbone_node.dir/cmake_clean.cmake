file(REMOVE_RECURSE
  "CMakeFiles/table6_nekbone_node.dir/table6_nekbone_node.cpp.o"
  "CMakeFiles/table6_nekbone_node.dir/table6_nekbone_node.cpp.o.d"
  "table6_nekbone_node"
  "table6_nekbone_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_nekbone_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
