# Empty compiler generated dependencies file for table6_nekbone_node.
# This may be replaced when dependencies are built.
