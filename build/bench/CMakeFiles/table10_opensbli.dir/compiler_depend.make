# Empty compiler generated dependencies file for table10_opensbli.
# This may be replaced when dependencies are built.
