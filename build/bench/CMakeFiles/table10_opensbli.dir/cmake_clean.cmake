file(REMOVE_RECURSE
  "CMakeFiles/table10_opensbli.dir/table10_opensbli.cpp.o"
  "CMakeFiles/table10_opensbli.dir/table10_opensbli.cpp.o.d"
  "table10_opensbli"
  "table10_opensbli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_opensbli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
