
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table10_opensbli.cpp" "bench/CMakeFiles/table10_opensbli.dir/table10_opensbli.cpp.o" "gcc" "bench/CMakeFiles/table10_opensbli.dir/table10_opensbli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
