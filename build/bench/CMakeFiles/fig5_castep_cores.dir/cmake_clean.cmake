file(REMOVE_RECURSE
  "CMakeFiles/fig5_castep_cores.dir/fig5_castep_cores.cpp.o"
  "CMakeFiles/fig5_castep_cores.dir/fig5_castep_cores.cpp.o.d"
  "fig5_castep_cores"
  "fig5_castep_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_castep_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
