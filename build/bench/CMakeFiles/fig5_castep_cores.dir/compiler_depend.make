# Empty compiler generated dependencies file for fig5_castep_cores.
# This may be replaced when dependencies are built.
