# Empty dependencies file for ext_minikab_solvers.
# This may be replaced when dependencies are built.
