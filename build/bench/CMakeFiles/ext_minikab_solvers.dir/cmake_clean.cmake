file(REMOVE_RECURSE
  "CMakeFiles/ext_minikab_solvers.dir/ext_minikab_solvers.cpp.o"
  "CMakeFiles/ext_minikab_solvers.dir/ext_minikab_solvers.cpp.o.d"
  "ext_minikab_solvers"
  "ext_minikab_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_minikab_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
