file(REMOVE_RECURSE
  "CMakeFiles/ext_placement.dir/ext_placement.cpp.o"
  "CMakeFiles/ext_placement.dir/ext_placement.cpp.o.d"
  "ext_placement"
  "ext_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
