# Empty compiler generated dependencies file for ext_placement.
# This may be replaced when dependencies are built.
