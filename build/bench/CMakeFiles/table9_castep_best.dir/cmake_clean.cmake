file(REMOVE_RECURSE
  "CMakeFiles/table9_castep_best.dir/table9_castep_best.cpp.o"
  "CMakeFiles/table9_castep_best.dir/table9_castep_best.cpp.o.d"
  "table9_castep_best"
  "table9_castep_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_castep_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
