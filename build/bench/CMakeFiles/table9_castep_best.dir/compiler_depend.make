# Empty compiler generated dependencies file for table9_castep_best.
# This may be replaced when dependencies are built.
