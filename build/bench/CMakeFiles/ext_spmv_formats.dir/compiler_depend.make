# Empty compiler generated dependencies file for ext_spmv_formats.
# This may be replaced when dependencies are built.
