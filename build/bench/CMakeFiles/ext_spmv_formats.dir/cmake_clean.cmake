file(REMOVE_RECURSE
  "CMakeFiles/ext_spmv_formats.dir/ext_spmv_formats.cpp.o"
  "CMakeFiles/ext_spmv_formats.dir/ext_spmv_formats.cpp.o.d"
  "ext_spmv_formats"
  "ext_spmv_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spmv_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
