# Empty compiler generated dependencies file for table8_cosa_ppn.
# This may be replaced when dependencies are built.
