file(REMOVE_RECURSE
  "CMakeFiles/table8_cosa_ppn.dir/table8_cosa_ppn.cpp.o"
  "CMakeFiles/table8_cosa_ppn.dir/table8_cosa_ppn.cpp.o.d"
  "table8_cosa_ppn"
  "table8_cosa_ppn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_cosa_ppn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
