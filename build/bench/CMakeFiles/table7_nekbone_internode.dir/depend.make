# Empty dependencies file for table7_nekbone_internode.
# This may be replaced when dependencies are built.
