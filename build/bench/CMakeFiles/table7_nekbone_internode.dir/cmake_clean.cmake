file(REMOVE_RECURSE
  "CMakeFiles/table7_nekbone_internode.dir/table7_nekbone_internode.cpp.o"
  "CMakeFiles/table7_nekbone_internode.dir/table7_nekbone_internode.cpp.o.d"
  "table7_nekbone_internode"
  "table7_nekbone_internode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_nekbone_internode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
