# Empty dependencies file for table4_hpcg_multi_node.
# This may be replaced when dependencies are built.
