file(REMOVE_RECURSE
  "CMakeFiles/table4_hpcg_multi_node.dir/table4_hpcg_multi_node.cpp.o"
  "CMakeFiles/table4_hpcg_multi_node.dir/table4_hpcg_multi_node.cpp.o.d"
  "table4_hpcg_multi_node"
  "table4_hpcg_multi_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hpcg_multi_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
