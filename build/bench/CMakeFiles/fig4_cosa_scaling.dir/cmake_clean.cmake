file(REMOVE_RECURSE
  "CMakeFiles/fig4_cosa_scaling.dir/fig4_cosa_scaling.cpp.o"
  "CMakeFiles/fig4_cosa_scaling.dir/fig4_cosa_scaling.cpp.o.d"
  "fig4_cosa_scaling"
  "fig4_cosa_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cosa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
