# Empty compiler generated dependencies file for fig4_cosa_scaling.
# This may be replaced when dependencies are built.
