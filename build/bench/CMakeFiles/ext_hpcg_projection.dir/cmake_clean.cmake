file(REMOVE_RECURSE
  "CMakeFiles/ext_hpcg_projection.dir/ext_hpcg_projection.cpp.o"
  "CMakeFiles/ext_hpcg_projection.dir/ext_hpcg_projection.cpp.o.d"
  "ext_hpcg_projection"
  "ext_hpcg_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hpcg_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
