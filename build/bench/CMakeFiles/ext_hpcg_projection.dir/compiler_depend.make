# Empty compiler generated dependencies file for ext_hpcg_projection.
# This may be replaced when dependencies are built.
