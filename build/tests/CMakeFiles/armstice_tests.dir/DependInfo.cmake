
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placeholder_test.cpp" "tests/CMakeFiles/armstice_tests.dir/placeholder_test.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/placeholder_test.cpp.o.d"
  "/root/repo/tests/test_apps_counts.cpp" "tests/CMakeFiles/armstice_tests.dir/test_apps_counts.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_apps_counts.cpp.o.d"
  "/root/repo/tests/test_apps_models.cpp" "tests/CMakeFiles/armstice_tests.dir/test_apps_models.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_apps_models.cpp.o.d"
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/armstice_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/armstice_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/armstice_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/armstice_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_kern_dense.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_dense.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_dense.cpp.o.d"
  "/root/repo/tests/test_kern_eigen.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_eigen.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_eigen.cpp.o.d"
  "/root/repo/tests/test_kern_ell.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_ell.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_ell.cpp.o.d"
  "/root/repo/tests/test_kern_fft.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_fft.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_fft.cpp.o.d"
  "/root/repo/tests/test_kern_mesh.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_mesh.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_mesh.cpp.o.d"
  "/root/repo/tests/test_kern_nek.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_nek.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_nek.cpp.o.d"
  "/root/repo/tests/test_kern_sell.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_sell.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_sell.cpp.o.d"
  "/root/repo/tests/test_kern_smoke.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_smoke.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_smoke.cpp.o.d"
  "/root/repo/tests/test_kern_sparse.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_sparse.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_sparse.cpp.o.d"
  "/root/repo/tests/test_kern_stencil.cpp" "tests/CMakeFiles/armstice_tests.dir/test_kern_stencil.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_kern_stencil.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/armstice_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/armstice_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_reproduction.cpp" "tests/CMakeFiles/armstice_tests.dir/test_reproduction.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_reproduction.cpp.o.d"
  "/root/repo/tests/test_score.cpp" "tests/CMakeFiles/armstice_tests.dir/test_score.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_score.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/armstice_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sim_fuzz.cpp" "tests/CMakeFiles/armstice_tests.dir/test_sim_fuzz.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_sim_fuzz.cpp.o.d"
  "/root/repo/tests/test_sim_placement.cpp" "tests/CMakeFiles/armstice_tests.dir/test_sim_placement.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_sim_placement.cpp.o.d"
  "/root/repo/tests/test_simmpi.cpp" "tests/CMakeFiles/armstice_tests.dir/test_simmpi.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_simmpi.cpp.o.d"
  "/root/repo/tests/test_svg.cpp" "tests/CMakeFiles/armstice_tests.dir/test_svg.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_svg.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/armstice_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/armstice_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/armstice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/armstice_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
