# Empty dependencies file for armstice_tests.
# This may be replaced when dependencies are built.
