// Tests of the extension components: arbitrary-size FFT (Bluestein), the
// power/energy model, and the execution-trace exporter.

#include "apps/nekbone/nekbone.hpp"
#include "arch/power.hpp"
#include "kern/fft/fft.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ak = armstice::kern;
namespace aa = armstice::arch;
namespace as = armstice::sim;

// ---- Bluestein FFT -----------------------------------------------------------

class FftAnySize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAnySize, MatchesNaiveDft) {
    armstice::util::Rng rng(GetParam());
    std::vector<ak::cplx> data(GetParam());
    for (auto& x : data) x = ak::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const auto expect = ak::dft_naive(data);
    ak::fft_any(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_LT(std::abs(data[i] - expect[i]),
                  1e-8 * static_cast<double>(GetParam()))
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftAnySize,
                         ::testing::Values(2u, 3u, 5u, 6u, 7u, 12u, 17u, 45u, 90u,
                                           100u, 128u));

TEST(FftAny, RoundTripArbitrarySize) {
    armstice::util::Rng rng(8);
    std::vector<ak::cplx> data(90);  // CASTEP TiN grid dimension
    for (auto& x : data) x = ak::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const auto orig = data;
    ak::fft_any(data);
    ak::ifft_any(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_LT(std::abs(data[i] - orig[i]), 1e-10);
    }
}

TEST(FftAny, Pow2PathIdenticalToFft) {
    armstice::util::Rng rng(9);
    std::vector<ak::cplx> a(64), b(64);
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = b[i] = ak::cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
    ak::fft(a);
    ak::fft_any(b);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_LT(std::abs(a[i] - b[i]), 1e-12);
}

// ---- power model -----------------------------------------------------------

TEST(Power, SpecsExistForAllSystems) {
    for (const auto& sys : aa::system_catalog()) {
        const auto p = aa::power_spec(sys);
        EXPECT_GT(p.idle_w, 0.0) << sys.name;
        EXPECT_GT(p.peak_w(), p.idle_w) << sys.name;
    }
}

TEST(Power, A64fxLowestPeakPower) {
    const double a64 = aa::power_spec(aa::a64fx()).peak_w();
    for (const auto& sys : aa::system_catalog()) {
        if (sys.name == "A64FX") continue;
        EXPECT_LT(a64, aa::power_spec(sys).peak_w()) << sys.name;
    }
}

TEST(Power, EnergyDecomposesIdlePlusDynamic) {
    const aa::PowerSpec p{100.0, 200.0, 10.0};
    // Fully busy for 2 s.
    EXPECT_DOUBLE_EQ(aa::node_energy_j(p, 2.0, 2.0), (110.0 + 200.0) * 2.0);
    // Half busy.
    EXPECT_DOUBLE_EQ(aa::node_energy_j(p, 1.0, 2.0), 110.0 * 2.0 + 200.0);
    EXPECT_THROW((void)aa::node_energy_j(p, 3.0, 2.0), armstice::util::Error);
}

TEST(Power, NekboneEfficiencyOrderingFavoursA64fx) {
    // Green500-style extension: the A64FX must deliver the best GFLOPs/W on
    // Nekbone by a wide margin (it is ~1.4x faster AND ~2x lower power).
    auto gfw = [](const aa::SystemSpec& sys) {
        const auto out = armstice::apps::run_nekbone(
            sys, armstice::apps::nekbone_node_config(sys, 1, false));
        return aa::gflops_per_watt(sys, out.run.total_flops, out.run.mean_compute(),
                                   out.seconds, 1);
    };
    const double a64 = gfw(aa::a64fx());
    EXPECT_GT(a64, 2.0 * gfw(aa::ngio()));
    EXPECT_GT(a64, 2.0 * gfw(aa::archer()));
    EXPECT_GT(a64, 1.5 * gfw(aa::fulhame()));
}

// ---- trace export ------------------------------------------------------------

TEST(Trace, RecordsComputeAndCollectiveSpans) {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto placement = as::Placement::block(aa::fulhame().node, 1, 4, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8, knobs);
    std::vector<as::Program> progs(4);
    for (int r = 0; r < 4; ++r) {
        aa::ComputePhase p;
        p.label = "work";
        p.flops = 1e9 * (r + 1);
        p.vector_fraction = 0.0;
        progs[static_cast<std::size_t>(r)].compute(p).allreduce(8);
    }
    as::Trace trace;
    const auto res = engine.run(progs, &trace);
    EXPECT_EQ(trace.size(), 8u);  // 4 compute + 4 collective spans
    // Compute span totals match the engine's accounting.
    double compute = 0;
    for (const auto& r : res.ranks) compute += r.compute;
    EXPECT_NEAR(trace.total_seconds(as::SpanKind::compute), compute, 1e-12);
    // Rank 0 (least work) waited longest in the collective.
    double wait0 = 0, wait3 = 0;
    for (const auto& s : trace.spans()) {
        if (s.kind != as::SpanKind::collective) continue;
        if (s.rank == 0) wait0 = s.end - s.begin;
        if (s.rank == 3) wait3 = s.end - s.begin;
    }
    EXPECT_GT(wait0, wait3);
}

TEST(Trace, RecordsRecvWaitAndSend) {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto placement = as::Placement::block(aa::fulhame().node, 1, 2, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8, knobs);
    std::vector<as::Program> progs(2);
    aa::ComputePhase p;
    p.label = "w";
    p.flops = 8.8e9;
    p.vector_fraction = 0.0;
    progs[0].compute(p).send(1, 1e6);
    progs[1].recv(0);
    as::Trace trace;
    (void)engine.run(progs, &trace);
    EXPECT_GT(trace.total_seconds(as::SpanKind::recv_wait), 0.9);
    EXPECT_GT(trace.total_seconds(as::SpanKind::send), 0.0);
}

TEST(Trace, ChromeJsonWellFormed) {
    as::Trace trace;
    trace.add({0, as::SpanKind::compute, "phase \"x\"", 0.0, 1.0});
    trace.add({1, as::SpanKind::collective, "", 0.5, 2.0});
    const std::string json = trace.to_chrome_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);  // escaped quote
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
    // Balanced braces as a cheap well-formedness proxy.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, RejectsBackwardsSpan) {
    as::Trace trace;
    EXPECT_THROW(trace.add({0, as::SpanKind::compute, "", 2.0, 1.0}),
                 armstice::util::Error);
}
