// Tests of the command-line parser behind example_armstice_cli.

#include "util/cli.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

namespace au = armstice::util;

namespace {

au::Cli make_cli() {
    au::Cli cli("prog", "test program");
    cli.flag("verbose", "talk more")
        .option("nodes", "node count", "1")
        .option("system", "system name")
        .positional("command", "what to do");
    return cli;
}

void parse(au::Cli& cli, std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    cli.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Cli, DefaultsApply) {
    auto cli = make_cli();
    parse(cli, {"run"});
    EXPECT_EQ(cli.get("nodes"), "1");
    EXPECT_EQ(cli.get_long("nodes"), 1);
    EXPECT_FALSE(cli.has("verbose"));
    ASSERT_EQ(cli.positionals().size(), 1u);
    EXPECT_EQ(cli.positionals()[0], "run");
}

TEST(Cli, EqualsAndSpaceSyntax) {
    auto cli = make_cli();
    parse(cli, {"run", "--nodes=8", "--system", "A64FX"});
    EXPECT_EQ(cli.get_long("nodes"), 8);
    EXPECT_EQ(cli.get("system"), "A64FX");
}

TEST(Cli, FlagsSetWithoutValue) {
    auto cli = make_cli();
    parse(cli, {"--verbose", "run"});
    EXPECT_TRUE(cli.has("verbose"));
}

TEST(Cli, UnknownOptionThrowsWithUsage) {
    auto cli = make_cli();
    try {
        parse(cli, {"--bogus"});
        FAIL();
    } catch (const au::Error& e) {
        EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("usage:"), std::string::npos);
    }
}

TEST(Cli, MissingValueThrows) {
    auto cli = make_cli();
    EXPECT_THROW(parse(cli, {"--system"}), au::Error);
}

TEST(Cli, FlagWithValueThrows) {
    auto cli = make_cli();
    EXPECT_THROW(parse(cli, {"--verbose=yes"}), au::Error);
}

TEST(Cli, TypedAccessorsValidate) {
    auto cli = make_cli();
    parse(cli, {"--nodes", "notanumber"});
    EXPECT_THROW((void)cli.get_long("nodes"), au::Error);
    auto cli2 = make_cli();
    parse(cli2, {"--nodes", "2.5"});
    EXPECT_DOUBLE_EQ(cli2.get_double("nodes"), 2.5);
}

TEST(Cli, MissingOptionThrowsOnGet) {
    auto cli = make_cli();
    parse(cli, {"run"});
    EXPECT_THROW((void)cli.get("system"), au::Error);  // no default
}

TEST(Cli, UsageListsEverything) {
    const auto cli = make_cli();
    const std::string u = cli.usage();
    EXPECT_NE(u.find("--verbose"), std::string::npos);
    EXPECT_NE(u.find("--nodes <v>"), std::string::npos);
    EXPECT_NE(u.find("(default: 1)"), std::string::npos);
    EXPECT_NE(u.find("<command>"), std::string::npos);
}

TEST(Cli, MultiplePositionalsPreserveOrder) {
    auto cli = make_cli();
    parse(cli, {"run", "hpcg", "--nodes", "4", "extra"});
    ASSERT_EQ(cli.positionals().size(), 3u);
    EXPECT_EQ(cli.positionals()[1], "hpcg");
    EXPECT_EQ(cli.positionals()[2], "extra");
}
