// End-to-end reproduction tests: the shape criteria of DESIGN.md §3, scored
// on the same experiment drivers the bench binaries print. These tests are
// the contract for "the paper's findings hold in the model".

#include "core/experiments.hpp"
#include "core/paper_data.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

namespace ac = armstice::core;

namespace {

double pct_err(double model, double paper) {
    return std::abs(model - paper) / paper * 100.0;
}

} // namespace

// Criterion 1 — Table III: every single-node HPCG number within 5% of the
// paper (these rows are the calibration anchors), ordering preserved.
TEST(Reproduction, Table3WithinTolerance) {
    const auto rows = ac::run_table3();
    ASSERT_EQ(rows.size(), 7u);
    std::map<std::string, double> unopt;
    for (const auto& r : rows) {
        EXPECT_LT(pct_err(r.model_gflops, r.paper_gflops), 5.0)
            << r.system << (r.optimized ? " opt" : "");
        if (!r.optimized) unopt[r.system] = r.model_gflops;
    }
    EXPECT_GT(unopt["A64FX"], unopt["EPCC NGIO"]);
    EXPECT_GT(unopt["EPCC NGIO"], unopt["Fulhame"]);
    EXPECT_GT(unopt["Fulhame"], unopt["Cirrus"]);
    EXPECT_GT(unopt["Cirrus"], unopt["ARCHER"]);
}

// Criterion 1b — Table IV: A64FX leads at every node count; scaling within
// 10% of the paper's multi-node values (which are predictions, not anchors).
TEST(Reproduction, Table4ScalingShape) {
    const auto rows = ac::run_table4();
    const auto* a64 = &rows[0];
    ASSERT_EQ(a64->system, "A64FX");
    for (std::size_t i = 0; i < 4; ++i) {
        for (const auto& r : rows) {
            if (r.system == "A64FX") continue;
            EXPECT_GT(a64->model[i], r.model[i])
                << r.system << " at " << ac::paper::kTable4Nodes[i] << " nodes";
        }
    }
    // Prediction quality (skip ARCHER, whose measured 2-node point is the
    // paper's own outlier: 26.25 GF/s is only a 1.68x step from 1 node).
    for (const auto& r : rows) {
        if (r.system == "ARCHER") continue;
        for (std::size_t i = 1; i < 4; ++i) {
            EXPECT_LT(pct_err(r.model[i], r.paper[i]), 10.0)
                << r.system << " nodes=" << ac::paper::kTable4Nodes[i];
        }
    }
}

// Criterion 2 — Table V: single-core minikab within 3% and ordered
// A64FX < NGIO < Fulhame; the A64FX/NGIO gap is small (~7%) while
// ThunderX2 is about 2x slower.
TEST(Reproduction, Table5SingleCore) {
    const auto rows = ac::run_table5();
    ASSERT_EQ(rows.size(), 3u);
    std::map<std::string, double> t;
    for (const auto& r : rows) {
        EXPECT_LT(pct_err(r.model_seconds, r.paper_seconds), 3.0) << r.system;
        t[r.system] = r.model_seconds;
    }
    EXPECT_LT(t["A64FX"], t["EPCC NGIO"]);
    EXPECT_LT(t["EPCC NGIO"], t["Fulhame"]);
    EXPECT_NEAR(t["EPCC NGIO"] / t["A64FX"], 1.07, 0.04);
    EXPECT_NEAR(t["Fulhame"] / t["A64FX"], 2.04, 0.1);
}

// Criterion 3 — Fig 1: plain MPI cannot exceed 48 processes on two nodes;
// with all 96 cores the hybrid setups cluster together and beat every
// partial-node configuration.
TEST(Reproduction, Fig1ConfigLandscape) {
    const auto series = ac::run_fig1();
    double best_full = 1e30, worst_full = 0;
    double best_partial = 1e30;
    bool plain_96_infeasible = false;
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            if (s.label == "plain MPI" && p.cores == 96) {
                plain_96_infeasible = !p.feasible;
            }
            if (!p.feasible) continue;
            if (p.cores == 96) {
                best_full = std::min(best_full, p.runtime_s);
                worst_full = std::max(worst_full, p.runtime_s);
            } else {
                best_partial = std::min(best_partial, p.runtime_s);
            }
        }
    }
    EXPECT_TRUE(plain_96_infeasible);
    EXPECT_LT(best_full, best_partial);       // use all the cores
    EXPECT_LT(worst_full / best_full, 1.15);  // full-node configs cluster
}

// Criterion 4 — Fig 2: A64FX faster than Fulhame at matched core counts;
// Fulhame's strong-scaling efficiency is at least as good.
TEST(Reproduction, Fig2StrongScaling) {
    const auto series = ac::run_fig2();
    ASSERT_EQ(series.size(), 2u);
    const auto& a64 = series[0];
    const auto& ful = series[1];
    // Matched core counts: 192 and 384.
    auto at_cores = [](const ac::Fig2Series& s, int cores) {
        for (const auto& p : s.points) {
            if (p.cores == cores) return p.runtime_s;
        }
        return -1.0;
    };
    for (int cores : {192, 384}) {
        const double ta = at_cores(a64, cores);
        const double tf = at_cores(ful, cores);
        ASSERT_GT(ta, 0);
        ASSERT_GT(tf, 0);
        EXPECT_LT(ta, tf) << cores;
    }
    // Scaling efficiency over each system's own range.
    const double pe_a64 = a64.points.front().runtime_s * a64.points.front().nodes /
                          (a64.points.back().runtime_s * a64.points.back().nodes);
    const double pe_ful = ful.points.front().runtime_s * ful.points.front().nodes /
                          (ful.points.back().runtime_s * ful.points.back().nodes);
    EXPECT_GE(pe_ful, pe_a64 - 0.02);
}

// Criterion 5 — Table VI: O3 ordering A64FX > NGIO > Fulhame > ARCHER within
// 5% each; fast-math helps A64FX ~1.8x, hurts NGIO, and the fast column is
// ordered A64FX > Fulhame > NGIO.
TEST(Reproduction, Table6NekboneNode) {
    const auto rows = ac::run_table6();
    std::map<std::string, const ac::Table6Row*> by;
    for (const auto& r : rows) {
        EXPECT_LT(pct_err(r.model_gflops, r.paper_gflops), 5.0) << r.system;
        EXPECT_LT(pct_err(r.model_fast, r.paper_fast), 5.0) << r.system;
        by[r.system] = &r;
    }
    EXPECT_GT(by["A64FX"]->model_gflops, by["EPCC NGIO"]->model_gflops);
    EXPECT_GT(by["EPCC NGIO"]->model_gflops, by["Fulhame"]->model_gflops);
    EXPECT_GT(by["Fulhame"]->model_gflops, by["ARCHER"]->model_gflops);
    EXPECT_NEAR(by["A64FX"]->model_fast / by["A64FX"]->model_gflops, 1.78, 0.05);
    EXPECT_LT(by["EPCC NGIO"]->model_fast, by["EPCC NGIO"]->model_gflops);
    EXPECT_GT(by["A64FX"]->model_fast, by["Fulhame"]->model_fast);
    EXPECT_GT(by["Fulhame"]->model_fast, by["EPCC NGIO"]->model_fast);
}

// Criterion 6 — Fig 3: IvyBridge saturates beyond ~4 cores per socket while
// the A64FX and ThunderX2 keep scaling to high core counts.
TEST(Reproduction, Fig3CoreScalingShapes) {
    const auto series = ac::run_fig3();
    std::map<std::string, const ac::Fig3Series*> by;
    for (const auto& s : series) by[s.system] = &s;

    auto mflops_at = [](const ac::Fig3Series& s, int cores) {
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            if (s.cores[i] == cores) return s.mflops[i];
        }
        return -1.0;
    };

    // ARCHER: strong start, early flattening (paper: "significant relative
    // performance decrease beyond four cores").
    const auto& archer = *by["ARCHER"];
    EXPECT_GT(mflops_at(archer, 4) / mflops_at(archer, 1), 3.0);
    EXPECT_LT(mflops_at(archer, 12) / mflops_at(archer, 4), 2.0);

    // A64FX: near-linear scaling across the node.
    const auto& a64 = *by["A64FX"];
    EXPECT_GT(mflops_at(a64, 48) / mflops_at(a64, 12), 3.0);

    // ThunderX2 keeps gaining all the way to 64 cores.
    const auto& ful = *by["Fulhame"];
    EXPECT_GT(mflops_at(ful, 64), mflops_at(ful, 48));
    EXPECT_GT(mflops_at(ful, 64) / mflops_at(ful, 32), 1.5);

    // At 24 cores the ThunderX2 is comparable to IvyBridge (paper §VI.B.1).
    EXPECT_NEAR(mflops_at(ful, 24) / mflops_at(archer, 24), 1.0, 0.6);
}

// Criterion 7 — Table VII: all parallel efficiencies at least 0.95 and
// decreasing with node count.
TEST(Reproduction, Table7ParallelEfficiencies) {
    const auto rows = ac::run_table7();
    ASSERT_EQ(rows.size(), 4u);
    for (const auto& r : rows) {
        for (double pe : {r.a64fx_model, r.fulhame_model, r.archer_model}) {
            EXPECT_GE(pe, 0.95) << r.nodes;
            EXPECT_LE(pe, 1.005) << r.nodes;
        }
    }
    EXPECT_LE(rows.back().a64fx_model, rows.front().a64fx_model);
}

// Criterion 8 — Fig 4: A64FX infeasible on one node, fastest from 2-8 nodes,
// overtaken by Fulhame at 16 nodes.
TEST(Reproduction, Fig4CosaCrossover) {
    const auto series = ac::run_fig4();
    std::map<std::string, const ac::Fig4Series*> by;
    for (const auto& s : series) by[s.system] = &s;

    auto at_nodes = [](const ac::Fig4Series& s, int nodes) -> const ac::Fig4Point* {
        for (const auto& p : s.points) {
            if (p.nodes == nodes) return &p;
        }
        return nullptr;
    };

    EXPECT_FALSE(at_nodes(*by["A64FX"], 1)->feasible);
    for (int nodes : {2, 4, 8}) {
        const double a64 = at_nodes(*by["A64FX"], nodes)->runtime_s;
        for (const char* other : {"ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"}) {
            EXPECT_LT(a64, at_nodes(*by[other], nodes)->runtime_s)
                << other << " at " << nodes;
        }
    }
    EXPECT_LT(at_nodes(*by["Fulhame"], 16)->runtime_s,
              at_nodes(*by["A64FX"], 16)->runtime_s);
}

// Criterion 9 — Table IX / Fig 5: CASTEP within 5% of every paper value;
// ordering NGIO > A64FX > Fulhame > Cirrus > ARCHER; ratios near the paper's.
TEST(Reproduction, Table9CastepBest) {
    const auto rows = ac::run_table9();
    std::map<std::string, double> perf;
    for (const auto& r : rows) {
        EXPECT_LT(pct_err(r.model, r.paper), 5.0) << r.system;
        perf[r.system] = r.model;
    }
    EXPECT_GT(perf["EPCC NGIO"], perf["A64FX"]);
    EXPECT_GT(perf["A64FX"], perf["Fulhame"]);
    EXPECT_GT(perf["Fulhame"], perf["Cirrus"]);
    EXPECT_GT(perf["Cirrus"], perf["ARCHER"]);
    EXPECT_NEAR(perf["EPCC NGIO"] / perf["A64FX"], 1.27, 0.08);
    EXPECT_NEAR(perf["ARCHER"] / perf["A64FX"], 0.51, 0.05);
}

TEST(Reproduction, Fig5MpiSweepRisesToFullNode) {
    const auto series = ac::run_fig5();
    for (const auto& s : series) {
        ASSERT_GE(s.cores.size(), 2u) << s.system;
        EXPECT_GT(s.scf_per_s.back(), s.scf_per_s.front()) << s.system;
        // Monotone non-decreasing within 2% tolerance.
        for (std::size_t i = 1; i < s.scf_per_s.size(); ++i) {
            EXPECT_GT(s.scf_per_s[i], 0.98 * s.scf_per_s[i - 1]) << s.system;
        }
    }
}

// Criterion 10 — Table X: A64FX slowest everywhere (~3x Fulhame on one
// node); every system scales to 8 nodes; values within 20% of the paper.
TEST(Reproduction, Table10Opensbli) {
    const auto rows = ac::run_table10();
    std::map<std::string, const ac::Table10Row*> by;
    for (const auto& r : rows) by[r.system] = &r;

    const auto& a64 = *by["A64FX"];
    const auto& ful = *by["Fulhame"];
    EXPECT_NEAR(a64.model[0] / ful.model[0], 2.9, 0.5);
    for (std::size_t i = 0; i < 4; ++i) {
        for (const auto& r : rows) {
            EXPECT_TRUE(r.feasible[i]) << r.system;
            if (r.system != "A64FX") {
                EXPECT_LT(r.model[i], a64.model[i]) << r.system << " col " << i;
            }
        }
    }
    for (const auto& r : rows) {
        EXPECT_LT(r.model[3], r.model[0]) << r.system;  // scales to 8 nodes
        for (std::size_t i = 0; i < 4; ++i) {
            // Exempt Fulhame at 4 nodes: the paper's 0.65 s is its own
            // outlier (barely faster than 2 nodes at 0.74 s, then a
            // super-linear drop to 0.28 s at 8) — see EXPERIMENTS.md.
            if (r.system == "Fulhame" && i == 2) continue;
            EXPECT_LT(pct_err(r.model[i], r.paper[i]), 20.0)
                << r.system << " col " << i;
        }
    }
}
