#pragma once
// Shared test library for the engine suites: gtest wrappers around the
// sim::check generator and the global invariants every deadlock-free
// generated case must satisfy. One generator feeds the fuzz tests
// (tests/test_sim_fuzz.cpp), the differential checker and the perturbation
// suite (tests/check/), so a new round type added in sim::check::generate is
// exercised everywhere at once.

#include "sim/check.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace armstice::testlib {

/// Invariants of a deadlock-free generated case (all round types the
/// generator emits are per-rank message-balanced by construction):
///  1. flop conservation — every generated flop is counted exactly once;
///  2. makespan dominates every rank's finish, finish dominates compute;
///  3. component times are non-negative;
///  4. per-rank send/receive balance.
inline void assert_invariants(const sim::check::GeneratedCase& gc,
                              const sim::RunResult& res) {
    ASSERT_EQ(gc.deadlock, sim::check::DeadlockKind::none)
        << "invariants only hold for deadlock-free cases";
    EXPECT_NEAR(res.total_flops, gc.total_flops,
                1e-6 * std::max(1.0, gc.total_flops));
    for (const auto& r : res.ranks) {
        EXPECT_LE(r.finish, res.makespan * (1 + 1e-12));
        EXPECT_GE(r.finish, r.compute - 1e-12);
        EXPECT_GE(r.recv_wait, 0.0);
        EXPECT_GE(r.collective_wait, 0.0);
        EXPECT_EQ(r.msgs_sent, r.msgs_received);
    }
}

/// Bitwise RunResult equality with a readable first-difference message.
inline void assert_bit_identical(const sim::RunResult& a, const sim::RunResult& b,
                                 const char* what) {
    const std::string diff = sim::check::diff_results(a, b);
    EXPECT_TRUE(diff.empty()) << what << ": " << diff;
}

} // namespace armstice::testlib
