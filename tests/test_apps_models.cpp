// Behavioural tests of the six application models: feasibility rules,
// configuration handling, and reference numerics.

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ap = armstice::apps;
namespace aa = armstice::arch;

// ---- HPCG -------------------------------------------------------------------

TEST(HpcgModel, RunsOnEverySystem) {
    for (const auto& sys : aa::system_catalog()) {
        ap::HpcgConfig cfg;
        cfg.iters = 2;
        const auto out = ap::run_hpcg(sys, 1, cfg);
        EXPECT_TRUE(out.res.feasible) << sys.name;
        EXPECT_GT(out.res.gflops, 1.0) << sys.name;
        EXPECT_GT(out.pct_peak, 0.0) << sys.name;
    }
}

TEST(HpcgModel, OptimizedVariantOnlyWhereItExisted) {
    ap::HpcgConfig cfg;
    cfg.optimized = true;
    cfg.iters = 1;
    EXPECT_NO_THROW((void)ap::run_hpcg(aa::ngio(), 1, cfg));
    EXPECT_THROW((void)ap::run_hpcg(aa::a64fx(), 1, cfg), armstice::util::Error);
}

TEST(HpcgModel, CommWaitGrowsWithNodes) {
    ap::HpcgConfig cfg;
    cfg.iters = 3;
    const auto one = ap::run_hpcg(aa::fulhame(), 1, cfg);
    const auto four = ap::run_hpcg(aa::fulhame(), 4, cfg);
    const double wait1 = one.res.run.mean_recv_wait() + one.res.run.mean_collective_wait();
    const double wait4 =
        four.res.run.mean_recv_wait() + four.res.run.mean_collective_wait();
    EXPECT_GT(wait4, wait1);
}

TEST(HpcgModel, ReferenceNumericsConverge) {
    const auto res = ap::hpcg_reference(16, 3, 40);
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.counts.flops, 0.0);
}

// ---- minikab ----------------------------------------------------------------

TEST(MinikabModel, PlainMpiMemoryCeilingAt48On2Nodes) {
    // The Fig 1 observation: 48 plain-MPI processes fit two A64FX nodes,
    // 96 do not.
    ap::MinikabConfig cfg;
    cfg.nodes = 2;
    cfg.ranks = 48;
    EXPECT_TRUE(ap::run_minikab(aa::a64fx(), cfg).feasible);
    cfg.ranks = 96;
    const auto out = ap::run_minikab(aa::a64fx(), cfg);
    EXPECT_FALSE(out.feasible);
    EXPECT_NE(out.note.find("GB"), std::string::npos);
}

TEST(MinikabModel, HybridUsesAllCores) {
    ap::MinikabConfig cfg;
    cfg.nodes = 2;
    cfg.ranks = 8;
    cfg.threads = 12;
    const auto out = ap::run_minikab(aa::a64fx(), cfg);
    EXPECT_TRUE(out.feasible);
    EXPECT_GT(out.gflops, 0.0);
}

TEST(MinikabModel, ThreadsSpeedUpFixedRankCount) {
    ap::MinikabConfig cfg;
    cfg.nodes = 2;
    cfg.ranks = 8;
    cfg.threads = 1;
    const double t1 = ap::run_minikab(aa::a64fx(), cfg).seconds;
    cfg.threads = 12;
    const double t12 = ap::run_minikab(aa::a64fx(), cfg).seconds;
    EXPECT_LT(t12, t1 / 4.0);
}

TEST(MinikabModel, ReferenceCgConverges) {
    const auto res = ap::minikab_reference(400, 5, 500);
    EXPECT_TRUE(res.converged);
}

TEST(MinikabModel, JacobiPreconditioningReducesIterations) {
    // The real solvers back the skeleton's iteration-factor assumption.
    // Structural FEM matrices are badly scaled (stiff elements next to soft
    // ones); build such a system directly — Jacobi fixes the scaling.
    const long n = 400;
    std::vector<armstice::kern::Triplet> trip;
    for (long i = 0; i < n; ++i) {
        // Geometrically spread stiffness over four decades (a continuum of
        // eigenvalues, so unpreconditioned CG cannot exploit clustering);
        // diagonal scaling collapses the spread.
        const double d = std::pow(10.0, 4.0 * static_cast<double>(i) / n);
        trip.push_back({i, i, d});
        if (i + 1 < n) {
            trip.push_back({i, i + 1, -0.45});
            trip.push_back({i + 1, i, -0.45});
        }
    }
    const armstice::kern::CsrMatrix a(n, n, std::move(trip));
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
    const auto plain = armstice::kern::cg_solve(
        a, b, x1, {.max_iters = 2000, .rel_tol = 1e-10});
    const auto pcg = armstice::kern::cg_solve(
        a, b, x2, {.max_iters = 2000, .rel_tol = 1e-10},
        armstice::kern::jacobi_preconditioner(a));
    ASSERT_TRUE(plain.converged);
    ASSERT_TRUE(pcg.converged);
    EXPECT_LT(pcg.iterations, plain.iterations / 2);
}

TEST(MinikabModel, PipelinedCgHalvesReductionPoints) {
    // At scale the pipelined variant's single allreduce shows up as lower
    // collective wait for the same per-iteration compute.
    ap::MinikabConfig cfg;
    cfg.nodes = 32;
    cfg.ranks = 128;
    cfg.threads = 12;
    cfg.solver = ap::MinikabSolver::cg;
    const auto plain = ap::run_minikab(aa::a64fx(), cfg);
    cfg.solver = ap::MinikabSolver::pipelined_cg;
    const auto piped = ap::run_minikab(aa::a64fx(), cfg);
    ASSERT_TRUE(plain.feasible && piped.feasible);
    EXPECT_LT(piped.run.mean_collective_wait(), plain.run.mean_collective_wait());
}

TEST(MinikabModel, SolverNamesStable) {
    EXPECT_STREQ(ap::minikab_solver_name(ap::MinikabSolver::cg), "cg");
    EXPECT_STREQ(ap::minikab_solver_name(ap::MinikabSolver::jacobi_pcg), "jacobi-pcg");
    EXPECT_STREQ(ap::minikab_solver_name(ap::MinikabSolver::pipelined_cg),
                 "pipelined-cg");
}

// ---- Nekbone ------------------------------------------------------------------

TEST(NekboneModel, FastmathDirectionPerSystem) {
    // -Kfast helps the A64FX and hurts NGIO (Table VI).
    const auto& a64 = aa::a64fx();
    const double a64_plain =
        ap::run_nekbone(a64, ap::nekbone_node_config(a64, 1, false)).gflops;
    const double a64_fast =
        ap::run_nekbone(a64, ap::nekbone_node_config(a64, 1, true)).gflops;
    EXPECT_GT(a64_fast, 1.5 * a64_plain);

    const auto& ngio = aa::ngio();
    const double ngio_plain =
        ap::run_nekbone(ngio, ap::nekbone_node_config(ngio, 1, false)).gflops;
    const double ngio_fast =
        ap::run_nekbone(ngio, ap::nekbone_node_config(ngio, 1, true)).gflops;
    EXPECT_LT(ngio_fast, ngio_plain);
}

TEST(NekboneModel, WeakScalingKeepsPerRankWork) {
    const auto& sys = aa::archer();
    const auto one = ap::run_nekbone(sys, ap::nekbone_node_config(sys, 1, false));
    const auto four = ap::run_nekbone(sys, ap::nekbone_node_config(sys, 4, false));
    EXPECT_NEAR(four.run.total_flops / one.run.total_flops, 4.0, 0.01);
    EXPECT_LT(four.seconds, 1.1 * one.seconds);  // weak scaling: ~constant time
}

TEST(NekboneModel, ReferenceCgRuns) {
    const auto res = ap::nekbone_reference(4, 6, 80);
    EXPECT_EQ(res.iterations, 80);
    EXPECT_LT(res.final_residual, 1.0);
}

// ---- COSA ----------------------------------------------------------------------

TEST(CosaModel, OneA64fxNodeInfeasibleTwoFeasible) {
    ap::CosaConfig cfg;
    cfg.nodes = 1;
    EXPECT_FALSE(ap::run_cosa(aa::a64fx(), cfg).feasible);
    cfg.nodes = 2;
    EXPECT_TRUE(ap::run_cosa(aa::a64fx(), cfg).feasible);
}

TEST(CosaModel, OtherSystemsFitOneNode) {
    ap::CosaConfig cfg;
    cfg.nodes = 1;
    for (const char* name : {"ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"}) {
        EXPECT_TRUE(ap::run_cosa(aa::system_by_name(name), cfg).feasible) << name;
    }
}

TEST(CosaModel, IdleRanksStillSynchronise) {
    // 1024 ranks, 800 blocks: the idle 224 must pass through the per-
    // iteration allreduce without deadlock.
    ap::CosaConfig cfg;
    cfg.nodes = 16;
    cfg.iterations = 3;
    EXPECT_NO_THROW((void)ap::run_cosa(aa::fulhame(), cfg));
}

TEST(CosaModel, SnapshotArithmetic) {
    ap::CosaConfig cfg;
    EXPECT_EQ(ap::cosa_snapshots(cfg), 9);  // 2*4+1
    cfg.harmonics = 1;
    EXPECT_EQ(ap::cosa_snapshots(cfg), 3);
}

TEST(CosaModel, FootprintNearSixtyGB) {
    ap::CosaConfig cfg;
    const double total = 800.0 * ap::cosa_bytes_per_rank(cfg, 1) - 800.0 * 30e6;
    EXPECT_NEAR(total, 60e9, 1.5e9);
}

// ---- CASTEP ----------------------------------------------------------------------

TEST(CastepModel, MpiOnlyBeatsHybridOnFullNode) {
    // The paper: best performance was MPI-only on all systems (Fig 5).
    ap::CastepConfig mpi;
    mpi.ranks = 48;
    const auto t_mpi = ap::run_castep(aa::ngio(), mpi);
    ap::CastepConfig hybrid;
    hybrid.ranks = 8;
    hybrid.threads = 6;
    const auto t_hybrid = ap::run_castep(aa::ngio(), hybrid);
    EXPECT_GT(t_mpi.scf_cycles_per_s, t_hybrid.scf_cycles_per_s);
}

TEST(CastepModel, PerformanceRisesWithCores) {
    double prev = 0;
    for (int cores : {8, 16, 32, 48}) {
        ap::CastepConfig cfg;
        cfg.ranks = cores;
        const auto out = ap::run_castep(aa::a64fx(), cfg);
        EXPECT_GT(out.scf_cycles_per_s, prev);
        prev = out.scf_cycles_per_s;
    }
}

TEST(CastepModel, ReferenceProducesCounts) {
    const auto c = ap::castep_reference(8, 2);
    EXPECT_GT(c.flops, 0.0);
    EXPECT_GT(c.bytes(), 0.0);
}

// ---- OpenSBLI ----------------------------------------------------------------------

TEST(OpensbliModel, DefaultsToFullNodeRanks) {
    ap::OpensbliConfig cfg;
    cfg.steps = 2;
    const auto out = ap::run_opensbli(aa::fulhame(), cfg);
    ASSERT_TRUE(out.feasible);
    EXPECT_EQ(static_cast<int>(out.run.ranks.size()), 64);
}

TEST(OpensbliModel, StrongScalingReducesRuntime) {
    ap::OpensbliConfig cfg;
    cfg.steps = 30;
    const double t1 = ap::run_opensbli(aa::ngio(), cfg).seconds;
    cfg.nodes = 4;
    const double t4 = ap::run_opensbli(aa::ngio(), cfg).seconds;
    EXPECT_LT(t4, t1);
    EXPECT_GT(t4, t1 / 4.5);  // sub-linear: overhead + halos
}

TEST(OpensbliModel, ReferenceConservesMass) {
    const auto ref = ap::opensbli_reference(16, 5);
    EXPECT_LT(ref.mass_drift, 1e-12);
    EXPECT_GT(ref.ke_initial, 0.0);
    EXPECT_NEAR(ref.ke_final, ref.ke_initial, 0.05 * ref.ke_initial);
}
