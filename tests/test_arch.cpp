// Tests of the architecture models: the Table I catalog, Table II toolchain
// encoding, and processor/node derived quantities.

#include "arch/system.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <map>

namespace aa = armstice::arch;

class CatalogTest : public ::testing::TestWithParam<std::size_t> {
protected:
    const aa::SystemSpec& sys() const { return aa::system_catalog()[GetParam()]; }
};

TEST_P(CatalogTest, NodeSpecValidates) { EXPECT_NO_THROW(sys().node.validate()); }

TEST_P(CatalogTest, MemoryPerCoreMatchesTableI) {
    // Table I "Memory per core": 0.66 / 2.66 / 7.11 / 4 / 4 GB.
    const double per_core = sys().node.mem_capacity() / sys().node.cores() / 1e9;
    const std::map<std::string, double> expect = {
        {"A64FX", 0.66}, {"ARCHER", 2.66}, {"Cirrus", 7.11},
        {"EPCC NGIO", 4.0}, {"Fulhame", 4.0}};
    EXPECT_NEAR(per_core, expect.at(sys().name), 0.08);
}

TEST_P(CatalogTest, DerivedPeakNearTablePeak) {
    // The physically derived peak matches Table I except on Cascade Lake,
    // where the paper appears to de-rate for AVX-512 frequency.
    const double derived = sys().node.peak_gflops();
    if (sys().name == "EPCC NGIO") {
        EXPECT_GT(derived, sys().table_peak_gflops);
    } else {
        EXPECT_NEAR(derived, sys().table_peak_gflops,
                    0.01 * sys().table_peak_gflops);
    }
}

TEST_P(CatalogTest, BandwidthHierarchySane) {
    const auto& cpu = sys().node.cpu;
    EXPECT_LT(cpu.core_gather_bw, cpu.core_stream_bw);
    EXPECT_LE(cpu.core_stream_bw, cpu.domain.bandwidth);
    EXPECT_GT(cpu.llc.capacity_bytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CatalogTest, ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(Catalog, TableICoreCounts) {
    EXPECT_EQ(aa::a64fx().node.cores(), 48);
    EXPECT_EQ(aa::archer().node.cores(), 24);
    EXPECT_EQ(aa::cirrus().node.cores(), 36);
    EXPECT_EQ(aa::ngio().node.cores(), 48);
    EXPECT_EQ(aa::fulhame().node.cores(), 64);
}

TEST(Catalog, TableIVectorWidths) {
    EXPECT_EQ(aa::a64fx().node.cpu.isa.width_bits, 512);
    EXPECT_EQ(aa::archer().node.cpu.isa.width_bits, 256);
    EXPECT_EQ(aa::cirrus().node.cpu.isa.width_bits, 256);
    EXPECT_EQ(aa::ngio().node.cpu.isa.width_bits, 512);
    EXPECT_EQ(aa::fulhame().node.cpu.isa.width_bits, 128);
}

TEST(Catalog, A64fxHasFourCmgsWithHbm) {
    const auto& cpu = aa::a64fx().node.cpu;
    EXPECT_EQ(cpu.core_groups, 4);
    EXPECT_EQ(cpu.cores_per_group, 12);
    EXPECT_NEAR(cpu.mem_capacity() / 1e9, 34.36, 0.1);  // 32 GiB
    EXPECT_GT(cpu.mem_bandwidth(), 800e9);              // HBM2
}

TEST(Catalog, InterconnectsMatchPaper) {
    EXPECT_EQ(aa::a64fx().net, aa::NetKind::tofud);
    EXPECT_EQ(aa::archer().net, aa::NetKind::aries);
    EXPECT_EQ(aa::cirrus().net, aa::NetKind::fdr_ib);
    EXPECT_EQ(aa::ngio().net, aa::NetKind::omnipath);
    EXPECT_EQ(aa::fulhame().net, aa::NetKind::edr_ib);
}

TEST(Catalog, LookupByNameAndUnknownThrows) {
    EXPECT_EQ(aa::system_by_name("A64FX").name, "A64FX");
    EXPECT_EQ(aa::system_by_name("Fulhame").node.cores(), 64);
    EXPECT_THROW(aa::system_by_name("Fugaku"), armstice::util::Error);
}

TEST(Catalog, MemoryBandwidthOrderingMatchesPaperNarrative) {
    // HBM >> TX2 8-channel > Cascade Lake 6-channel > Broadwell > IvyBridge.
    EXPECT_GT(aa::a64fx().node.mem_bandwidth(), aa::fulhame().node.mem_bandwidth());
    EXPECT_GT(aa::fulhame().node.mem_bandwidth(), aa::ngio().node.mem_bandwidth());
    EXPECT_GT(aa::ngio().node.mem_bandwidth(), aa::cirrus().node.mem_bandwidth());
    EXPECT_GT(aa::cirrus().node.mem_bandwidth(), aa::archer().node.mem_bandwidth());
}

TEST(VectorIsa, LaneCountsAndNames) {
    EXPECT_EQ(aa::a64fx().node.cpu.isa.dp_lanes(), 8);
    EXPECT_EQ(aa::fulhame().node.cpu.isa.dp_lanes(), 2);
    EXPECT_EQ(aa::a64fx().node.cpu.isa.name(), "SVE512");
    EXPECT_EQ(aa::ngio().node.cpu.isa.name(), "AVX-512");
}

TEST(NodeSpec, ValidateRejectsBadSpecs) {
    aa::NodeSpec bad = aa::a64fx().node;
    bad.cpu.freq_hz = 0;
    EXPECT_THROW(bad.validate(), armstice::util::Error);
    bad = aa::a64fx().node;
    bad.cpu.domain.bandwidth = 0;
    EXPECT_THROW(bad.validate(), armstice::util::Error);
    bad = aa::a64fx().node;
    bad.sockets = 0;
    EXPECT_THROW(bad.validate(), armstice::util::Error);
}

// ---- Table II toolchains ---------------------------------------------------

TEST(Toolchain, HpcgEntriesMatchTableII) {
    const auto a64 = aa::toolchain_for("A64FX", "hpcg");
    EXPECT_EQ(a64.vendor, aa::CompilerVendor::fujitsu);
    EXPECT_EQ(a64.compiler, "Fujitsu 1.2.24");
    EXPECT_NE(a64.flags.find("-Kfast"), std::string::npos);
    EXPECT_TRUE(a64.fastmath);

    const auto ful = aa::toolchain_for("Fulhame", "hpcg");
    EXPECT_EQ(ful.vendor, aa::CompilerVendor::gnu);
    EXPECT_NE(ful.flags.find("-ffast-math"), std::string::npos);
}

TEST(Toolchain, MinikabUsesFujitsu125OnA64fx) {
    EXPECT_EQ(aa::toolchain_for("A64FX", "minikab").compiler, "Fujitsu 1.2.25");
    EXPECT_EQ(aa::toolchain_for("Fulhame", "minikab").vendor,
              aa::CompilerVendor::armclang);
}

TEST(Toolchain, CastepCarriesLibraries) {
    const auto tc = aa::toolchain_for("A64FX", "castep");
    ASSERT_EQ(tc.libraries.size(), 3u);
    EXPECT_EQ(tc.libraries[1], "Fujitsu SSL2");
    EXPECT_EQ(tc.libraries[2], "FFTW 3.3.3");
    EXPECT_FALSE(tc.fastmath);  // CASTEP A64FX row is plain -O3
}

TEST(Toolchain, OpensbliA64fxFallsBackToSystemDefault) {
    // Table II has no OpenSBLI/A64FX row; the fallback must still be the
    // Fujitsu toolchain.
    const auto tc = aa::toolchain_for("A64FX", "opensbli");
    EXPECT_EQ(tc.vendor, aa::CompilerVendor::fujitsu);
}

TEST(Toolchain, UnknownSystemThrows) {
    EXPECT_THROW(aa::toolchain_for("Summit", "hpcg"), armstice::util::Error);
}

class ToolchainCoverage
    : public ::testing::TestWithParam<std::tuple<std::size_t, const char*>> {};

TEST_P(ToolchainCoverage, EverySystemAppPairResolves) {
    const auto& sys = aa::system_catalog()[std::get<0>(GetParam())];
    const auto tc = aa::toolchain_for(sys.name, std::get<1>(GetParam()));
    EXPECT_FALSE(tc.compiler.empty());
    EXPECT_GT(tc.vec_quality, 0.0);
    EXPECT_LE(tc.vec_quality, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ToolchainCoverage,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::ValuesIn(aa::kToolchainApps)));
