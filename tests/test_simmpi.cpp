// Tests of the MiniMpi program-builder facade and its decomposition helpers.

#include "simmpi/minimpi.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace am = armstice::simmpi;
namespace as = armstice::sim;

TEST(Chunks, PartitionCoversExactly) {
    for (long n : {0L, 1L, 7L, 100L, 9573984L}) {
        for (int p : {1, 2, 3, 7, 48}) {
            long total = 0;
            for (int i = 0; i < p; ++i) total += am::chunk_size(n, p, i);
            EXPECT_EQ(total, n);
            // begins are consistent with sizes.
            for (int i = 0; i + 1 < p; ++i) {
                EXPECT_EQ(am::chunk_begin(n, p, i) + am::chunk_size(n, p, i),
                          am::chunk_begin(n, p, i + 1));
            }
        }
    }
}

TEST(Chunks, BalancedWithinOne) {
    for (int i = 0; i < 7; ++i) {
        const long s = am::chunk_size(100, 7, i);
        EXPECT_GE(s, 14);
        EXPECT_LE(s, 15);
    }
}

TEST(Chunks, BadIndicesThrow) {
    EXPECT_THROW(am::chunk_size(10, 0, 0), armstice::util::Error);
    EXPECT_THROW(am::chunk_size(10, 2, 2), armstice::util::Error);
    EXPECT_THROW(am::chunk_begin(10, 2, -1), armstice::util::Error);
}

TEST(DimsCreate, ProductEqualsRanks) {
    for (int p : {1, 2, 6, 48, 96, 768, 1024}) {
        const auto dims = am::dims_create(p, 3);
        EXPECT_EQ(dims.size(), 3u);
        EXPECT_EQ(dims[0] * dims[1] * dims[2], p);
        EXPECT_GE(dims[0], dims[1]);
        EXPECT_GE(dims[1], dims[2]);
    }
}

TEST(DimsCreate, NearCubicFor48) {
    const auto dims = am::dims_create(48, 3);
    EXPECT_LE(dims[0], 4);  // 4x4x3, not 48x1x1
}

TEST(CartNeighbors, NonPeriodicCounts) {
    // 3x3 grid: corner 2, edge 3, centre 4 neighbours.
    const auto nb = am::cart_neighbors({3, 3}, false);
    EXPECT_EQ(nb[0].size(), 2u);
    EXPECT_EQ(nb[1].size(), 3u);
    EXPECT_EQ(nb[4].size(), 4u);
}

TEST(CartNeighbors, PeriodicUniformCounts) {
    const auto nb = am::cart_neighbors({4, 4}, true);
    for (const auto& v : nb) EXPECT_EQ(v.size(), 4u);
}

TEST(CartNeighbors, SymmetricGraph) {
    for (bool periodic : {false, true}) {
        const auto nb = am::cart_neighbors({3, 4, 2}, periodic);
        for (std::size_t r = 0; r < nb.size(); ++r) {
            for (int n : nb[r]) {
                const auto& back = nb[static_cast<std::size_t>(n)];
                EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(r)),
                          back.end());
            }
        }
    }
}

TEST(CartNeighbors, PeriodicSizeTwoDimDeduplicated) {
    const auto nb = am::cart_neighbors({2, 1, 1}, true);
    EXPECT_EQ(nb[0].size(), 1u);  // rank 1 appears once, not twice
}

TEST(ProgramSet, SpmdHelpersHitEveryRank) {
    am::ProgramSet ps(3);
    armstice::arch::ComputePhase phase;
    phase.flops = 10;
    ps.mark("m").compute(phase).allreduce(8).barrier().alltoall(16);
    const auto progs = ps.take();
    for (const auto& p : progs) {
        EXPECT_EQ(p.ops.size(), 5u);
        EXPECT_DOUBLE_EQ(p.total_flops(), 10.0);
    }
}

TEST(ProgramSet, ComputeByRankVaries) {
    am::ProgramSet ps(4);
    ps.compute_by_rank([](int r) {
        armstice::arch::ComputePhase p;
        p.flops = 100.0 * r;
        return p;
    });
    auto progs = ps.take();
    EXPECT_DOUBLE_EQ(progs[0].total_flops(), 0.0);
    EXPECT_DOUBLE_EQ(progs[3].total_flops(), 300.0);
}

TEST(ProgramSet, HaloExchangeEmitsSendsThenRecvs) {
    am::ProgramSet ps(2);
    ps.halo_exchange({{1}, {0}}, 1e3);
    const auto progs = ps.take();
    ASSERT_EQ(progs[0].ops.size(), 2u);
    EXPECT_TRUE(std::holds_alternative<as::SendOp>(progs[0].ops[0]));
    EXPECT_TRUE(std::holds_alternative<as::RecvOp>(progs[0].ops[1]));
    EXPECT_DOUBLE_EQ(std::get<as::SendOp>(progs[0].ops[0]).bytes, 1e3);
}

TEST(ProgramSet, HaloExchangeAsymmetricBytes) {
    am::ProgramSet ps(2);
    ps.halo_exchange({{1}, {0}}, {{100.0}, {900.0}});
    const auto progs = ps.take();
    EXPECT_DOUBLE_EQ(std::get<as::SendOp>(progs[0].ops[0]).bytes, 100.0);
    EXPECT_DOUBLE_EQ(std::get<as::SendOp>(progs[1].ops[0]).bytes, 900.0);
}

TEST(ProgramSet, AsymmetricHaloGraphRejected) {
    am::ProgramSet ps(3);
    // 0 -> 1 but 1 does not list 0.
    EXPECT_THROW(ps.halo_exchange({{1}, {2}, {1}}, 1.0), armstice::util::Error);
}

TEST(ProgramSet, HaloSizesMustMatchRanks) {
    am::ProgramSet ps(2);
    EXPECT_THROW(ps.halo_exchange({{1}}, 1.0), armstice::util::Error);
}

TEST(ProgramSet, BadRankAccessThrows) {
    am::ProgramSet ps(2);
    EXPECT_THROW(ps.at(2), armstice::util::Error);
    EXPECT_THROW(am::ProgramSet(0), armstice::util::Error);
}

TEST(Program, TotalsCountOnlyComputeOps) {
    as::Program p;
    armstice::arch::ComputePhase phase;
    phase.flops = 5;
    phase.main_bytes = 7;
    p.compute(phase).send(0, 100).allreduce(8).compute(phase);
    EXPECT_DOUBLE_EQ(p.total_flops(), 10.0);
    EXPECT_DOUBLE_EQ(p.total_main_bytes(), 14.0);
}
