// Calibration regression tests: the MemLevel tables in system_catalog.cpp
// must keep reproducing the published A64FX measurements the ECM paper
// (Alappat et al., arXiv:2103.03013) and the source paper anchor the model
// to. Table-driven so a future re-tune that silently breaks an anchor fails
// with the offending row's name.

#include "arch/calibration.hpp"
#include "arch/cost_model.hpp"
#include "arch/ecm.hpp"
#include "arch/system.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aa = armstice::arch;
namespace au = armstice::util;

namespace {

/// Effective end-to-end per-stream bandwidth the model grants a pure-memory
/// phase under `streams` co-resident streams.
double effective_bw(const aa::SystemSpec& sys, aa::MemPattern pattern, int streams,
                    double working_set = 0.0) {
    aa::ComputePhase p;
    p.label = "calib";
    p.flops = 1.0;
    p.main_bytes = 1e9;
    p.pattern = pattern;
    p.working_set = working_set;
    aa::ExecContext ctx;
    ctx.cpu = &sys.node.cpu;
    ctx.streams_on_domain = streams;
    const auto out = aa::CostModel{}.explain(p, ctx);
    return p.main_bytes / out.t_mem;
}

struct Anchor {
    std::string name;
    const aa::SystemSpec* sys;
    aa::MemPattern pattern;
    int streams;
    double expect_bw;   ///< published end-to-end bytes/s
    double tol_pct;     ///< stated tolerance
};

} // namespace

// Single-stream anchors: the measured per-core saturation rates every system
// encodes (A64FX numbers from the ECM paper's machine model; x86/TX2 from
// the source paper's Table V fits). The composed ECM hierarchy must land on
// the measurement — that is what cap deconvolution guarantees, and what this
// table keeps honest.
TEST(EcmCalibration, SingleStreamAnchorsReproduceMeasurements) {
    const std::vector<Anchor> anchors = {
        {"A64FX stream (ECM paper single-core STREAM)", &aa::a64fx(),
         aa::MemPattern::stream, 1, 55.0 * au::GB_per_s, 1.0},
        {"A64FX SpMV gather (ECM paper CRS kernel, Table V fit)", &aa::a64fx(),
         aa::MemPattern::gather, 1, 8.07 * au::GB_per_s, 1.0},
        {"ARCHER stream", &aa::archer(), aa::MemPattern::stream, 1,
         12.0 * au::GB_per_s, 1.0},
        {"Cirrus stream", &aa::cirrus(), aa::MemPattern::stream, 1,
         14.0 * au::GB_per_s, 1.0},
        {"NGIO stream", &aa::ngio(), aa::MemPattern::stream, 1,
         15.0 * au::GB_per_s, 1.0},
        {"NGIO SpMV gather", &aa::ngio(), aa::MemPattern::gather, 1,
         7.84 * au::GB_per_s, 1.0},
        {"Fulhame stream", &aa::fulhame(), aa::MemPattern::stream, 1,
         10.0 * au::GB_per_s, 1.0},
    };
    for (const auto& a : anchors) {
        const double bw = effective_bw(*a.sys, a.pattern, a.streams);
        EXPECT_NEAR(bw, a.expect_bw, a.expect_bw * a.tol_pct / 100.0) << a.name;
    }
}

// The paper fits the A64FX SpMV gather rate so one A64FX core is ~7% faster
// than one Cascade Lake core (Table V discussion); the ECM composition must
// preserve that ratio.
TEST(EcmCalibration, A64fxGatherAdvantageOverCascadeLake) {
    const double a64 = effective_bw(aa::a64fx(), aa::MemPattern::gather, 1);
    const double clx = effective_bw(aa::ngio(), aa::MemPattern::gather, 1);
    EXPECT_NEAR(a64 / clx, 8.07 / 7.84, 0.01);
}

// DGEMM anchor: a cache-blocked GEMM's tile traffic (3 x 64x64 doubles,
// kern/dense/blas.cpp) is L2-resident on the A64FX, and the ECM paper's
// machine model sustains ~80 GB/s/core from L2. The model must price
// L2-resident traffic at exactly that leg.
TEST(EcmCalibration, A64fxDgemmTileTrafficRunsAtL2Bandwidth) {
    const double tile_ws = 3.0 * 64.0 * 64.0 * 8.0;  // gemm kBlock tiles
    const double bw = effective_bw(aa::a64fx(), aa::MemPattern::stream, 1, tile_ws);
    EXPECT_NEAR(bw, 80.0 * au::GB_per_s, 80.0 * au::GB_per_s * 1e-9);
}

// Saturated-CMG anchor: with all 12 cores streaming, the serialized L2 leg
// keeps the aggregate below the 210 GB/s sustained-triad figure the domain
// encodes — the ECM paper's central A64FX observation — but within 25% of
// it (the L2 is a co-bottleneck, not the bottleneck).
TEST(EcmCalibration, A64fxSaturatedCmgBelowTriadButClose) {
    const double per_stream = effective_bw(aa::a64fx(), aa::MemPattern::stream, 12);
    const double aggregate = 12.0 * per_stream;
    EXPECT_LT(aggregate, 210.0 * au::GB_per_s);
    EXPECT_GT(aggregate, 0.75 * 210.0 * au::GB_per_s);
}

// The calibrated residual efficiencies stay in the legal (0, 1.5] band on
// every system — recalibration (the v4 A64FX re-fit included) must never
// push one out of range, because CostModel::explain rejects it at runtime.
TEST(EcmCalibration, ResidualEfficienciesStayInRange) {
    for (const auto& sys : aa::system_catalog()) {
        for (double e : {aa::calib::hpcg_efficiency(sys, false),
                         aa::calib::nekbone_efficiency(sys),
                         aa::calib::cosa_efficiency(sys),
                         aa::calib::minikab_efficiency(sys)}) {
            EXPECT_GT(e, 0.0) << sys.name;
            EXPECT_LE(e, 1.5) << sys.name;
        }
    }
}
