// Conformance tests of the ECM multi-level memory model (arch/ecm.hpp,
// DESIGN.md §12): per-level transfer legs are well-formed, composition never
// beats its slowest leg (roofline bound), pricing is monotone in working-set
// size, degenerate configurations reproduce the flat v3 model bit-exactly,
// and the model-version stamp is pinned at the v4 bump.

#include "arch/cost_model.hpp"
#include "arch/ecm.hpp"
#include "arch/system.hpp"
#include "kern/counters.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace aa = armstice::arch;
namespace au = armstice::util;

namespace {

aa::ComputePhase phase_of(double bytes, double working_set = 0.0,
                          aa::MemPattern pattern = aa::MemPattern::stream) {
    aa::ComputePhase p;
    p.label = "ecm-test";
    p.flops = 1.0;  // memory-bound by construction
    p.main_bytes = bytes;
    p.working_set = working_set;
    p.pattern = pattern;
    return p;
}

aa::ExecContext ctx_on(const aa::SystemSpec& sys, int streams = 1, int threads = 1) {
    aa::ExecContext ctx;
    ctx.cpu = &sys.node.cpu;
    ctx.streams_on_domain = streams;
    ctx.threads = threads;
    return ctx;
}

} // namespace

// The v4 bump is load-bearing: it invalidates every persistent sweep-cache
// entry priced by the flat v3 model. Anyone changing the model must bump
// this again — and regenerate the engine/figure goldens, as this suite's
// siblings check.
TEST(EcmModel, ModelVersionPinnedAtFour) {
    EXPECT_EQ(aa::kModelVersion, 4u);
}

TEST(EcmModel, EveryCatalogSystemCarriesAHierarchy) {
    for (const auto& sys : aa::system_catalog()) {
        const aa::Processor& cpu = sys.node.cpu;
        ASSERT_GE(cpu.levels.size(), 2u) << sys.name;
        ASSERT_LE(cpu.levels.size(), static_cast<std::size_t>(aa::kMaxMemLevels))
            << sys.name;
        // Last level is main memory: capacity equals the domain, bandwidth
        // comes from the contention/cap machinery, not the table.
        EXPECT_EQ(cpu.levels.back().bw_per_core, 0.0) << sys.name;
        for (std::size_t k = 0; k + 1 < cpu.levels.size(); ++k) {
            EXPECT_GT(cpu.levels[k].bw_per_core, 0.0) << sys.name;
            EXPECT_LE(cpu.levels[k].capacity_bytes, cpu.levels[k + 1].capacity_bytes)
                << sys.name;
        }
    }
}

TEST(EcmModel, LegsNonNegativeAndBoundedByComposition) {
    for (const auto& sys : aa::system_catalog()) {
        const aa::Processor& cpu = sys.node.cpu;
        const int n = static_cast<int>(cpu.levels.size());
        for (int residence = 0; residence < n; ++residence) {
            const auto b = aa::EcmModel::decompose(cpu, 1e8, residence, 10.0 * au::GB_per_s);
            double sum = 0.0, worst = 0.0;
            for (int k = 0; k < aa::kMaxMemLevels; ++k) {
                EXPECT_GE(b.t_leg[static_cast<std::size_t>(k)], 0.0) << sys.name;
                sum += b.t_leg[static_cast<std::size_t>(k)];
                worst = std::max(worst, b.t_leg[static_cast<std::size_t>(k)]);
            }
            EXPECT_EQ(b.t_leg[0], 0.0) << sys.name;  // L1 traffic is in-core
            // Composition lies between full overlap (slowest leg) and full
            // serialization (sum of legs) — the roofline bound and its dual.
            EXPECT_GE(b.t_data, worst - 1e-18) << sys.name;
            EXPECT_LE(b.t_data, sum + 1e-18) << sys.name;
        }
    }
}

TEST(EcmModel, RooflineBoundNeverExceeded) {
    // The effective per-stream bandwidth the cost model grants can never
    // exceed the bandwidth of any leg the data actually crosses.
    const aa::CostModel m;
    for (const auto& sys : aa::system_catalog()) {
        for (double ws : {0.0, 16.0 * au::KiB, 200.0 * au::KiB, 4.0 * au::MiB, 1.0 * au::GiB}) {
            for (int streams : {1, 4, 12}) {
                const auto p = phase_of(1e9, ws);
                const auto out = m.explain(p, ctx_on(sys, streams));
                ASSERT_GT(out.ecm.n_levels, 0) << sys.name;
                double worst = 0.0;
                for (double t : out.ecm.t_leg) worst = std::max(worst, t);
                EXPECT_GE(out.t_mem, worst - 1e-18) << sys.name << " ws=" << ws;
                EXPECT_TRUE(std::isfinite(out.total)) << sys.name;
            }
        }
    }
}

TEST(EcmModel, TimeMonotoneInWorkingSetSize) {
    // Growing the working set can only push residence deeper into the
    // hierarchy, adding transfer legs — time never decreases.
    const aa::CostModel m;
    for (const auto& sys : aa::system_catalog()) {
        double prev = 0.0;
        for (double ws = 1.0 * au::KiB; ws <= 64.0 * au::GiB; ws *= 2.0) {
            const double t = m.phase_time(phase_of(1e9, ws), ctx_on(sys));
            EXPECT_GE(t, prev) << sys.name << " ws=" << ws;
            prev = t;
        }
        // And the streaming default (working_set = 0) is the deepest case.
        EXPECT_EQ(m.phase_time(phase_of(1e9, 0.0), ctx_on(sys)), prev) << sys.name;
    }
}

TEST(EcmModel, ResidenceLevelFollowsCapacities) {
    const aa::Processor& cpu = aa::a64fx().node.cpu;  // 64 KiB L1 / 8 MiB L2 / HBM
    EXPECT_EQ(aa::EcmModel::residence_level(cpu, 16.0 * au::KiB, 1.0), 0);
    EXPECT_EQ(aa::EcmModel::residence_level(cpu, 1.0 * au::MiB, 1.0), 1);
    EXPECT_EQ(aa::EcmModel::residence_level(cpu, 1.0 * au::GiB, 1.0), 2);
    EXPECT_EQ(aa::EcmModel::residence_level(cpu, 0.0, 1.0), 2);  // streaming
    // The L2 is shared by the CMG's ranks: 1 MiB per rank at 12 ranks spills.
    EXPECT_EQ(aa::EcmModel::residence_level(cpu, 1.0 * au::MiB, 12.0), 2);
}

TEST(EcmModel, DeconvolvedCapRecomposesToMeasuredRate) {
    // The A64FX per-core caps are end-to-end measurements; deconvolution
    // followed by serial leg composition must land back on them exactly.
    const aa::Processor& cpu = aa::a64fx().node.cpu;
    for (double cap : {55.0 * au::GB_per_s, 8.07 * au::GB_per_s,
                       au::cache_line / cpu.domain.latency_s}) {
        const double raw = aa::EcmModel::deconvolve_cap(cpu, cap);
        ASSERT_GT(raw, cap);  // removing the serialized L2 leg can only raise it
        double inv = 1.0 / raw;
        for (std::size_t k = 1; k + 1 < cpu.levels.size(); ++k) {
            inv += 1.0 / cpu.levels[k].bw_per_core;
        }
        EXPECT_NEAR(1.0 / inv, cap, cap * 1e-12);
    }
    // Overlapping hierarchies (all the x86 systems) need no deconvolution.
    const aa::Processor& ngio = aa::ngio().node.cpu;
    EXPECT_EQ(aa::EcmModel::deconvolve_cap(ngio, ngio.core_stream_bw),
              ngio.core_stream_bw);
}

TEST(EcmModel, SingleLevelHierarchyReproducesFlatModelBitExactly) {
    // Degenerate config: a processor whose level table collapses to a single
    // (memory-only) entry must price every phase exactly like the flat v3
    // model — the ECM path is only entered with >= 2 levels.
    aa::SystemSpec sys = aa::a64fx();
    sys.node.cpu.levels = {aa::MemLevel{"HBM2", 8.0 * au::GiB, 0.0, true}};
    const aa::CostModel ecm_on;  // default knobs: ecm = true
    aa::ModelKnobs off;
    off.ecm = false;
    const aa::CostModel ecm_off(off);
    for (double ws : {0.0, 100.0 * au::KiB, 1.0 * au::GiB}) {
        for (int streams : {1, 12}) {
            for (auto pat : {aa::MemPattern::stream, aa::MemPattern::gather,
                             aa::MemPattern::dependent}) {
                const auto p = phase_of(3.14e8, ws, pat);
                const auto a = ecm_on.explain(p, ctx_on(sys, streams));
                const auto b = ecm_off.explain(p, ctx_on(sys, streams));
                EXPECT_EQ(a.total, b.total);
                EXPECT_EQ(a.t_mem, b.t_mem);
                EXPECT_EQ(a.bw_per_stream, b.bw_per_stream);
                EXPECT_EQ(a.ecm.n_levels, 0);  // flat fallback taken
            }
        }
    }
}

TEST(EcmModel, OverlappingHierarchyMatchesFlatWhenCoreCapBinds) {
    // On the fully-overlapping x86/TX2 hierarchies the composed time is the
    // slowest leg. With the default knobs the per-core cap is below every
    // cache leg's bandwidth, so the memory leg is always slowest and the
    // streaming price is bit-identical to v3 — the reason the paper-anchor
    // reproduction tests did not move on ARCHER/Cirrus/NGIO/Fulhame.
    const aa::CostModel ecm_on;
    aa::ModelKnobs off;
    off.ecm = false;
    const aa::CostModel ecm_off(off);
    for (const auto* sys : {&aa::archer(), &aa::cirrus(), &aa::ngio(), &aa::fulhame()}) {
        for (int streams : {1, 8, 24}) {
            for (auto pat : {aa::MemPattern::stream, aa::MemPattern::gather}) {
                const auto p = phase_of(1e9, 0.0, pat);
                const auto a = ecm_on.explain(p, ctx_on(*sys, streams));
                const auto b = ecm_off.explain(p, ctx_on(*sys, streams));
                EXPECT_EQ(a.total, b.total) << sys->name;
                EXPECT_EQ(a.t_mem, b.t_mem) << sys->name;
            }
        }
    }
}

TEST(EcmModel, SerializedA64fxHierarchyIsSlowerUnderContention) {
    // The tentpole's behavioural change: at full-CMG occupancy the A64FX
    // domain share picks up a serialized L2 leg, so the ECM price exceeds
    // the flat one — this is the drift the A64FX residuals were
    // recalibrated for.
    const aa::CostModel ecm_on;
    aa::ModelKnobs off;
    off.ecm = false;
    const aa::CostModel ecm_off(off);
    const auto p = phase_of(1e9);
    const auto a = ecm_on.explain(p, ctx_on(aa::a64fx(), /*streams=*/12));
    const auto b = ecm_off.explain(p, ctx_on(aa::a64fx(), /*streams=*/12));
    EXPECT_GT(a.t_mem, b.t_mem);
    EXPECT_LT(a.t_mem, 1.5 * b.t_mem);  // the L2 leg is a correction, not a cliff
    // ...while the uncontended single-core price matches the measured cap on
    // both paths (cap deconvolution, DeconvolvedCapRecomposesToMeasuredRate).
    const auto a1 = ecm_on.explain(p, ctx_on(aa::a64fx(), 1));
    const auto b1 = ecm_off.explain(p, ctx_on(aa::a64fx(), 1));
    EXPECT_NEAR(a1.t_mem, b1.t_mem, b1.t_mem * 1e-12);
}

// --- OpCounts working-set plumbing (the latent bug class: kernels that do
// --- not report a working set must keep v3 streaming pricing) -------------

TEST(EcmModel, OpCountsWorkingSetDefaultsToZero) {
    armstice::kern::OpCounts c;
    EXPECT_EQ(c.ws_bytes, 0.0);
    armstice::kern::OpCounts other;
    other.ws_bytes = 4096.0;
    c += other;
    EXPECT_EQ(c.ws_bytes, 4096.0);  // peak footprint: max, not sum
    armstice::kern::OpCounts smaller;
    smaller.ws_bytes = 128.0;
    c += smaller;
    EXPECT_EQ(c.ws_bytes, 4096.0);
}

TEST(EcmModel, ZeroWorkingSetKeepsStreamingPricingBitExactly) {
    // working_set = 0 (the OpCounts default) must price exactly like
    // "assume streaming from memory" — i.e. like cache_model = false. A
    // default that silently granted cache residence is the bug class this
    // pins down.
    aa::ModelKnobs no_cache;
    no_cache.cache_model = false;
    const aa::CostModel with_cache;
    const aa::CostModel without_cache(no_cache);
    for (const auto& sys : aa::system_catalog()) {
        for (int streams : {1, 12}) {
            const auto p = phase_of(1e9, 0.0);
            const auto a = with_cache.explain(p, ctx_on(sys, streams));
            const auto b = without_cache.explain(p, ctx_on(sys, streams));
            EXPECT_EQ(a.total, b.total) << sys.name;
            EXPECT_EQ(a.t_mem, b.t_mem) << sys.name;
        }
    }
}
