// Concurrency and coalescing tests (DESIGN.md §14.2). The load-bearing
// claims: N concurrent requests naming the same key trigger exactly ONE
// computation; every requester — owner, joiner, late joiner — receives
// bit-identical bytes; admission control is all-or-nothing with a clean
// rollback; and the whole dance is data-race-free (this suite runs under
// ARMSTICE_SANITIZE=thread in CI).
//
// Determinism tool: a gated evaluator. Computations block inside the
// evaluator until the test releases them, so "requests arrive while the
// computation is in flight" is a constructed fact, not a timing hope.

#include "core/cache.hpp"
#include "core/runner.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/str.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

namespace ac = armstice::core;
namespace as = armstice::serve;
namespace fs = std::filesystem;

namespace {

/// Evaluator gate: run() counts the call per key, then blocks until
/// release(). The payload is a pure function of the spec, so bit-identity
/// checks are exact.
class GatedEvaluator {
public:
    std::string run(const as::PointSpec& spec) {
        const std::string key = spec.app + "|" + std::to_string(spec.nodes) +
                                "|" + spec.config;
        std::unique_lock<std::mutex> lock(mu_);
        ++calls_[key];
        ++entered_;
        entered_cv_.notify_all();
        release_cv_.wait(lock, [this] { return released_; });
        return "payload:" + key;
    }

    /// Block until `n` computations are inside run().
    void await_entered(int n) {
        std::unique_lock<std::mutex> lock(mu_);
        entered_cv_.wait(lock, [&] { return entered_ >= n; });
    }

    void release() {
        std::lock_guard<std::mutex> lock(mu_);
        released_ = true;
        release_cv_.notify_all();
    }

    [[nodiscard]] std::map<std::string, int> calls() {
        std::lock_guard<std::mutex> lock(mu_);
        return calls_;
    }

private:
    std::mutex mu_;
    std::condition_variable entered_cv_;
    std::condition_variable release_cv_;
    std::map<std::string, int> calls_;
    int entered_ = 0;
    bool released_ = false;
};

as::PointSpec spec(const std::string& app, int nodes, const std::string& cfg) {
    as::PointSpec p;
    p.app = app;
    p.system = "A64FX";
    p.nodes = nodes;
    p.ranks = 8 * nodes;
    p.threads = 1;
    p.config = cfg;
    return p;
}

std::string unique_sock(const std::string& tag) {
    return (fs::path(::testing::TempDir()) /
            ("armstice-serve-conc-" + tag + ".sock"))
        .string();
}

} // namespace

TEST(ServeConcurrent, LateJoinersAttachToThePendingComputation) {
    // One key, eight concurrent requests, the computation held in flight:
    // exactly one evaluator call, the seven joiners coalesce, and everyone
    // reads the same payload from the one shared future.
    GatedEvaluator gate;
    as::SweepService service(
        as::ServiceConfig{2, 64},
        [&gate](const as::PointSpec& s) { return gate.run(s); });
    const std::vector<as::PointSpec> one = {
        as::canonicalize(spec("minikab", 1, "rows=100000;iters=10"))};

    std::vector<as::SweepService::Ticket> tickets(8);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] { tickets[t] = service.submit(one); });
    }
    for (auto& th : threads) th.join();
    gate.await_entered(1);
    gate.release();

    int owners = 0, joiners = 0;
    std::vector<std::string> payloads;
    for (const auto& t : tickets) {
        ASSERT_TRUE(t.admitted);
        ASSERT_EQ(t.futures.size(), 1u);
        const as::PointOutcome out = t.futures[0].get();
        ASSERT_TRUE(out.ok) << out.error;
        payloads.push_back(out.payload);
        owners += t.fresh;
        joiners += t.coalesced + t.cached;
    }
    EXPECT_EQ(owners, 1);
    EXPECT_EQ(joiners, 7);
    for (const auto& p : payloads) EXPECT_EQ(p, payloads[0]);

    const auto calls = gate.calls();
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls.begin()->second, 1) << "key evaluated more than once";
    service.stop();
    EXPECT_EQ(service.stats().computed, 1);
    EXPECT_EQ(service.stats().inflight, 0);
}

TEST(ServeConcurrent, ExactlyOneComputationPerDistinctKeyUnderContention) {
    // 16 threads x 40 requests over 6 distinct keys, evaluator released from
    // the start (free-running): however the interleaving lands, each key is
    // computed exactly once, ever.
    GatedEvaluator gate;
    gate.release();
    as::SweepService service(
        as::ServiceConfig{4, 64},
        [&gate](const as::PointSpec& s) { return gate.run(s); });

    std::vector<as::PointSpec> pool;
    for (int k = 0; k < 6; ++k) {
        pool.push_back(as::canonicalize(
            spec(k % 2 == 0 ? "minikab" : "nekbone", 1 + k / 2,
                 k % 2 == 0 ? armstice::util::format("rows=%d;iters=10", 100000 + k)
                            : armstice::util::format("elems=%d;iters=10", 4 + k))));
    }

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 16; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < 40; ++r) {
                // Deterministic per-thread rotation over the pool.
                std::vector<as::PointSpec> req = {pool[(t + r) % pool.size()],
                                                  pool[(t + 2 * r) % pool.size()]};
                auto ticket = service.submit(req);
                if (!ticket.admitted) continue;  // overload is legal here
                for (std::size_t i = 0; i < ticket.futures.size(); ++i) {
                    const as::PointOutcome out = ticket.futures[i].get();
                    const std::string want =
                        "payload:" + req[i].app + "|" +
                        std::to_string(req[i].nodes) + "|" + req[i].config;
                    if (!out.ok || out.payload != want) ++mismatches;
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(mismatches.load(), 0);
    const auto calls = gate.calls();
    EXPECT_EQ(calls.size(), pool.size());
    for (const auto& [key, n] : calls) {
        EXPECT_EQ(n, 1) << "key '" << key << "' computed " << n << " times";
    }
    service.stop();
    EXPECT_EQ(service.stats().computed, static_cast<long>(pool.size()));
}

TEST(ServeConcurrent, AdmissionIsAllOrNothingWithCleanRollback) {
    // workers=1, queue capacity 2. Key A occupies the worker (gated); a
    // request needing 3 fresh computations cannot fit and must be rejected
    // whole — and its rolled-back entries must not poison later requests.
    GatedEvaluator gate;
    as::SweepService service(
        as::ServiceConfig{1, 2},
        [&gate](const as::PointSpec& s) { return gate.run(s); });

    const auto a = as::canonicalize(spec("minikab", 1, "rows=100000;iters=10"));
    const auto b = as::canonicalize(spec("minikab", 2, "rows=100000;iters=10"));
    const auto c = as::canonicalize(spec("minikab", 3, "rows=100000;iters=10"));
    const auto d = as::canonicalize(spec("minikab", 4, "rows=100000;iters=10"));

    auto ta = service.submit({a});
    ASSERT_TRUE(ta.admitted);
    gate.await_entered(1);  // worker now holds A; the queue is empty

    // B+C+D needs 3 queue slots; only 2 exist. All-or-nothing: rejected.
    auto tbcd = service.submit({b, c, d});
    EXPECT_FALSE(tbcd.admitted);
    EXPECT_TRUE(tbcd.futures.empty());
    EXPECT_EQ(tbcd.limit, 2u);
    EXPECT_EQ(service.stats().overloads, 1);

    // Rollback check: B must be admittable as a FRESH computation — if the
    // rejected request had leaked its entry, this would wrongly coalesce
    // against a computation nobody queued (and hang forever).
    auto tb = service.submit({b});
    ASSERT_TRUE(tb.admitted);
    EXPECT_EQ(tb.fresh, 1u);
    EXPECT_EQ(tb.coalesced, 0u);

    gate.release();
    EXPECT_TRUE(ta.futures[0].get().ok);
    EXPECT_TRUE(tb.futures[0].get().ok);

    // After the release, C+D fit (all-or-nothing now succeeds).
    auto tcd = service.submit({c, d});
    ASSERT_TRUE(tcd.admitted);
    EXPECT_TRUE(tcd.futures[0].get().ok);
    EXPECT_TRUE(tcd.futures[1].get().ok);
    service.stop();
    EXPECT_EQ(service.stats().computed, 4);
}

TEST(ServeConcurrent, DuplicatePointsWithinOneRequestCoalesce) {
    GatedEvaluator gate;
    gate.release();
    as::SweepService service(
        as::ServiceConfig{2, 64},
        [&gate](const as::PointSpec& s) { return gate.run(s); });
    const auto a = as::canonicalize(spec("minikab", 1, "rows=100000;iters=10"));
    auto t = service.submit({a, a, a});
    ASSERT_TRUE(t.admitted);
    EXPECT_EQ(t.fresh, 1u);
    EXPECT_EQ(t.coalesced, 2u);
    const std::string p0 = t.futures[0].get().payload;
    EXPECT_EQ(t.futures[1].get().payload, p0);
    EXPECT_EQ(t.futures[2].get().payload, p0);
    service.stop();
    EXPECT_EQ(service.stats().computed, 1);
    EXPECT_EQ(gate.calls().size(), 1u);
}

TEST(ServeConcurrent, FullStackClientsStreamOneComputationPerKey) {
    // The same invariants through the real server: sockets, sessions,
    // streaming. 8 clients x the same 4-point request; the evaluator tallies
    // per-key calls.
    const std::string sock = unique_sock("fullstack");
    GatedEvaluator gate;
    gate.release();
    as::ServerConfig cfg;
    cfg.unix_path = sock;
    cfg.workers = 3;
    as::Server server(cfg, [&gate](const as::PointSpec& s) { return gate.run(s); });
    server.start();

    std::vector<as::PointSpec> specs;
    for (int k = 0; k < 4; ++k) {
        specs.push_back(spec("minikab", 1 + k, "rows=100000;iters=10"));
    }

    std::vector<as::Client::SweepReply> replies(8);
    std::vector<std::string> failures(8);
    std::vector<std::thread> threads;
    for (int c = 0; c < 8; ++c) {
        threads.emplace_back([&, c] {
            try {
                as::Client client = as::Client::connect_unix_path(sock);
                replies[c] = client.sweep(specs);
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (auto& th : threads) th.join();

    for (int c = 0; c < 8; ++c) {
        ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
        ASSERT_FALSE(replies[c].retry) << "client " << c;
        ASSERT_EQ(replies[c].points.size(), specs.size()) << "client " << c;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            ASSERT_TRUE(replies[c].points[i].ok);
            EXPECT_EQ(replies[c].points[i].payload, replies[0].points[i].payload)
                << "client " << c << " point " << i;
        }
    }
    for (const auto& [key, n] : gate.calls()) {
        EXPECT_EQ(n, 1) << "key '" << key << "'";
    }
    EXPECT_EQ(gate.calls().size(), specs.size());
    const as::StatsResult stats = server.stats_snapshot();
    EXPECT_EQ(stats.computed, specs.size());
    EXPECT_EQ(stats.cache_hits + stats.coalesced,
              8 * specs.size() - specs.size());
    server.stop();
}

TEST(ServeConcurrent, FullStackOverloadYieldsTypedRetryLater) {
    // workers=1 + capacity 2, computations held: the blocker's two keys pin
    // the worker and one queue slot, so a client asking for two fresh keys
    // finds only one slot free and must receive RETRY_LATER carrying the
    // admission bound — and succeed on retry once the gate opens.
    const std::string sock = unique_sock("retry");
    GatedEvaluator gate;
    as::ServerConfig cfg;
    cfg.unix_path = sock;
    cfg.workers = 1;
    cfg.max_inflight = 2;
    as::Server server(cfg, [&gate](const as::PointSpec& s) { return gate.run(s); });
    server.start();

    as::Client blocker = as::Client::connect_unix_path(sock);
    blocker.send_sweep_only({spec("minikab", 1, "rows=100000;iters=10"),
                             spec("minikab", 4, "rows=100000;iters=10")});
    gate.await_entered(1);  // worker holds key 1; key 4 occupies a queue slot

    as::Client victim = as::Client::connect_unix_path(sock);
    const auto rejected = victim.sweep({spec("minikab", 2, "rows=100000;iters=10"),
                                        spec("minikab", 3, "rows=100000;iters=10")});
    EXPECT_TRUE(rejected.retry);
    EXPECT_EQ(rejected.retry_info.limit, 2u);
    EXPECT_TRUE(rejected.points.empty());

    gate.release();
    // Drain the blocker's stream to SweepDone before retrying: the done frame
    // is sent only after both of its points resolved, and finish_job decrements
    // inflight before resolving a future — so by here capacity is fully free
    // and the retry's admission is deterministic, not a race against drain.
    as::Message msg;
    while (blocker.read_message(msg) && !std::holds_alternative<as::SweepDone>(msg.body)) {
    }
    const auto accepted =
        victim.sweep({spec("minikab", 2, "rows=100000;iters=10"),
                      spec("minikab", 3, "rows=100000;iters=10")});
    EXPECT_FALSE(accepted.retry);
    ASSERT_EQ(accepted.points.size(), 2u);
    EXPECT_TRUE(accepted.points[0].ok);
    EXPECT_TRUE(accepted.points[1].ok);
    EXPECT_GE(server.stats_snapshot().retries, 1u);
    server.stop();
}
