// Fault-injection tests (DESIGN.md §14.3): the server must stay correct
// when clients misbehave and when its own persistent cache is damaged.
//
//   * a client disconnecting mid-stream must not cancel or corrupt the
//     shared computation — coalesced joiners and later requests still get
//     the result, exactly once;
//   * malformed frames (zero-length, oversized, garbage, unknown type) are
//     answered with a typed BAD_FRAME error and a closed session — the
//     claimed body of an oversized length prefix is never allocated;
//   * a well-formed frame carrying an invalid request (unknown app, bad
//     config) earns BAD_REQUEST but the session survives for the next
//     request;
//   * a damaged CacheStore entry degrades to a logged miss: the point is
//     recomputed and served bit-identical to the uncorrupted reference.

#include "core/app_codecs.hpp"
#include "core/cache.hpp"
#include "core/runner.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ac = armstice::core;
namespace as = armstice::serve;
namespace au = armstice::util;
namespace fs = std::filesystem;

namespace {

class ServeFault : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               ("armstice-serve-fault-" + std::string(info->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        sock_ = (dir_ / "serve.sock").string();
        au::set_log_sink([this](au::LogLevel level, const std::string& msg) {
            std::lock_guard<std::mutex> lock(warn_mu_);
            if (level >= au::LogLevel::warn) warnings_.push_back(msg);
        });
        ac::reset_sweep_cache();
    }

    void TearDown() override {
        ac::set_cache_dir("");
        ac::reset_sweep_cache();
        au::set_log_sink(nullptr);
        fs::remove_all(dir_);
    }

    [[nodiscard]] bool warned_containing(const std::string& needle) {
        std::lock_guard<std::mutex> lock(warn_mu_);
        for (const auto& w : warnings_) {
            if (w.find(needle) != std::string::npos) return true;
        }
        return false;
    }

    static void overwrite(const std::string& path, const std::string& bytes) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    /// Raw frame bytes: u32 length prefix + payload.
    static std::string frame_bytes(const std::string& payload) {
        std::string out;
        const auto len = static_cast<std::uint32_t>(payload.size());
        for (int i = 0; i < 4; ++i) {
            out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
        }
        return out + payload;
    }

    /// Expect: one BAD_FRAME error frame, then a closed connection.
    static void expect_bad_frame_then_close(as::Client& client) {
        as::Message m;
        ASSERT_TRUE(client.read_message(m)) << "no error frame before close";
        const auto* err = std::get_if<as::ErrorMsg>(&m.body);
        ASSERT_NE(err, nullptr);
        EXPECT_EQ(err->code, as::ErrorCode::kBadFrame);
        EXPECT_FALSE(client.read_message(m)) << "session not closed";
    }

    as::PointSpec minikab_spec(int nodes) const {
        as::PointSpec p;
        p.app = "minikab";
        p.system = "A64FX";
        p.nodes = nodes;
        p.ranks = 8 * nodes;
        p.threads = 1;
        p.config = "rows=120000;nnz=1500000;iters=15";
        return p;
    }

    fs::path dir_;
    std::string sock_;
    std::mutex warn_mu_;
    std::vector<std::string> warnings_;
};

/// Gate + tally evaluator (same shape as the concurrency suite's).
class Gate {
public:
    std::string run(const as::PointSpec& spec) {
        const std::string key = spec.app + "|" + std::to_string(spec.nodes);
        std::unique_lock<std::mutex> lock(mu_);
        ++calls_[key];
        ++entered_;
        entered_cv_.notify_all();
        release_cv_.wait(lock, [this] { return released_; });
        return "payload:" + key;
    }
    void await_entered(int n) {
        std::unique_lock<std::mutex> lock(mu_);
        entered_cv_.wait(lock, [&] { return entered_ >= n; });
    }
    void release() {
        std::lock_guard<std::mutex> lock(mu_);
        released_ = true;
        release_cv_.notify_all();
    }
    [[nodiscard]] std::map<std::string, int> calls() {
        std::lock_guard<std::mutex> lock(mu_);
        return calls_;
    }

private:
    std::mutex mu_;
    std::condition_variable entered_cv_, release_cv_;
    std::map<std::string, int> calls_;
    int entered_ = 0;
    bool released_ = false;
};

} // namespace

TEST_F(ServeFault, DisconnectMidStreamDoesNotCancelTheSharedComputation) {
    Gate gate;
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    cfg.workers = 2;
    as::Server server(cfg, [&gate](const as::PointSpec& s) { return gate.run(s); });
    server.start();

    {
        // The doomed client: request two points, vanish while both are in
        // flight.
        as::Client doomed = as::Client::connect_unix_path(sock_);
        doomed.send_sweep_only({minikab_spec(1), minikab_spec(2)});
        gate.await_entered(2);
        doomed.close();  // mid-stream disconnect, results never read
    }
    gate.release();

    // A later client asking for the same keys gets both — served from the
    // entries the doomed client's computations completed into.
    as::Client survivor = as::Client::connect_unix_path(sock_);
    const auto reply = survivor.sweep({minikab_spec(1), minikab_spec(2)});
    ASSERT_FALSE(reply.retry);
    ASSERT_EQ(reply.points.size(), 2u);
    EXPECT_TRUE(reply.points[0].ok);
    EXPECT_TRUE(reply.points[1].ok);
    EXPECT_EQ(reply.points[0].payload, "payload:minikab|1");
    EXPECT_EQ(reply.points[1].payload, "payload:minikab|2");

    // Exactly once each, despite the disconnect.
    for (const auto& [key, n] : gate.calls()) EXPECT_EQ(n, 1) << key;
    EXPECT_EQ(server.stats_snapshot().computed, 2u);
    server.stop();
}

TEST_F(ServeFault, ZeroLengthFrameIsRejectedWithBadFrame) {
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg);
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    ASSERT_TRUE(client.send_raw(std::string(4, '\0')));  // length prefix 0
    expect_bad_frame_then_close(client);
    EXPECT_EQ(server.stats_snapshot().protocol_errors, 1u);
    server.stop();
}

TEST_F(ServeFault, OversizedLengthPrefixIsRejectedWithoutReadingTheBody) {
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg);
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    // Claim a body of kMaxFrame+1 bytes but send none: a server that tried
    // to read (or allocate) the claimed body would hang here; the early
    // rejection answers immediately.
    const std::uint32_t len = as::kMaxFrame + 1;
    std::string prefix;
    for (int i = 0; i < 4; ++i) {
        prefix.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    ASSERT_TRUE(client.send_raw(prefix));
    expect_bad_frame_then_close(client);
    EXPECT_EQ(server.stats_snapshot().protocol_errors, 1u);
    server.stop();
}

TEST_F(ServeFault, GarbagePayloadIsRejectedWithBadFrame) {
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg);
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    ASSERT_TRUE(client.send_raw(frame_bytes("\xfegarbage frame body")));
    expect_bad_frame_then_close(client);
    server.stop();
}

TEST_F(ServeFault, TruncatedFrameThenDisconnectIsACleanClose) {
    // Half a frame followed by EOF is a hangup, not a protocol error: the
    // server must just reap the session.
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg);
    server.start();
    {
        as::Client client = as::Client::connect_unix_path(sock_);
        ASSERT_TRUE(client.send_raw(frame_bytes("partial").substr(0, 6)));
        client.close();
    }
    // The session thread notices EOF; a fresh client still gets service.
    as::Client next = as::Client::connect_unix_path(sock_);
    EXPECT_NO_THROW((void)next.stats());
    EXPECT_EQ(server.stats_snapshot().protocol_errors, 0u);
    server.stop();
}

TEST_F(ServeFault, InvalidRequestEarnsBadRequestButTheSessionSurvives) {
    Gate gate;
    gate.release();
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg, [&gate](const as::PointSpec& s) { return gate.run(s); });
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);

    // Unknown app: typed BAD_REQUEST (client surfaces it as an exception).
    as::PointSpec bad = minikab_spec(1);
    bad.app = "hpl";
    EXPECT_THROW((void)client.sweep({bad}), au::Error);

    // Unknown config key: same.
    bad = minikab_spec(1);
    bad.config = "rows=1000;warp_drive=9";
    EXPECT_THROW((void)client.sweep({bad}), au::Error);

    // The session is still usable for a valid request.
    const auto reply = client.sweep({minikab_spec(1)});
    ASSERT_FALSE(reply.retry);
    ASSERT_EQ(reply.points.size(), 1u);
    EXPECT_TRUE(reply.points[0].ok);
    server.stop();
}

TEST_F(ServeFault, DamagedCacheEntryDegradesToLoggedMissAndRecompute) {
    // Populate the persistent cache through the batch path, then flip a byte
    // inside one entry. A cold server (memo reset) must log the damaged
    // entry as a miss, recompute the point, and serve bytes identical to the
    // pristine reference — while the intact entry is served from disk.
    ac::set_cache_dir((dir_ / "cache").string());
    const std::vector<as::PointSpec> specs = {minikab_spec(1), minikab_spec(2)};
    const std::vector<armstice::apps::AppResult> batch = as::batch_eval(specs, 1);
    const std::string ref0 = as::encode_result(batch[0]);
    const std::string ref1 = as::encode_result(batch[1]);
    ASSERT_EQ(ac::cache_store()->stats().stores, 2u);

    // Corrupt entry 0 (checksum break deep in the payload).
    const std::string key0 =
        std::string(ac::ResultTraits<armstice::apps::AppResult>::tag) + '|' +
        as::to_sweep_point(as::canonicalize(specs[0])).key();
    const std::string path0 = ac::cache_store()->path_for(key0);
    auto bytes = au::read_file(path0);
    ASSERT_TRUE(bytes.has_value()) << path0;
    (*bytes)[bytes->size() - 5] ^= 0x2d;
    overwrite(path0, *bytes);

    ac::reset_sweep_cache();  // cold memo; the damaged entry is all that's left
    as::ServerConfig cfg;
    cfg.unix_path = sock_;
    as::Server server(cfg);
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    const auto reply = client.sweep(specs);
    ASSERT_FALSE(reply.retry);
    ASSERT_EQ(reply.points.size(), 2u);
    ASSERT_TRUE(reply.points[0].ok) << reply.points[0].payload;
    ASSERT_TRUE(reply.points[1].ok) << reply.points[1].payload;
    EXPECT_EQ(reply.points[0].payload, ref0) << "recomputed point diverged";
    EXPECT_EQ(reply.points[1].payload, ref1);

    EXPECT_TRUE(warned_containing("cache:")) << "damage was not logged";
    const auto stats = ac::sweep_stats();
    EXPECT_EQ(stats.misses, 1) << "damaged entry should force one re-eval";
    EXPECT_EQ(stats.disk_hits, 1) << "intact entry should come from disk";
    server.stop();
}
