// Differential tests: bytes streamed by serve::Server must be EXPECT_EQ
// bit-identical to the batch SweepRunner path for the same points — at jobs
// 1 and jobs 8, from a cold cache and from a warm one, and regardless of how
// the client spelled the config string. "Close" is not a concept here: both
// paths share one SweepPoint key and one encoder, so a single differing byte
// is a real divergence.

#include "core/cache.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

namespace ac = armstice::core;
namespace as = armstice::serve;
namespace au = armstice::util;
namespace fs = std::filesystem;

namespace {

class ServeDifferential : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               ("armstice-serve-diff-" + std::string(info->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        sock_ = (dir_ / "serve.sock").string();
        ac::reset_sweep_cache();
    }

    void TearDown() override {
        ac::set_cache_dir("");
        ac::reset_sweep_cache();
        au::set_log_sink(nullptr);
        fs::remove_all(dir_);
    }

    [[nodiscard]] as::Server make_server_config(int workers = 2) const {
        as::ServerConfig cfg;
        cfg.unix_path = sock_;
        cfg.workers = workers;
        return as::Server(cfg);
    }

    fs::path dir_;
    std::string sock_;
};

/// Request points across all three served apps, each spelled with scrambled
/// key order / omitted defaults — canonicalization must make them equal to
/// the tidy batch spelling.
std::vector<as::PointSpec> wire_specs() {
    std::vector<as::PointSpec> specs;
    as::PointSpec p;

    p.app = "minikab";
    p.system = "A64FX";
    p.nodes = 2;
    p.ranks = 16;
    p.threads = 1;
    p.config = "iters=30;rows=150000;nnz=2000000";  // scrambled key order
    specs.push_back(p);

    p = as::PointSpec{};
    p.app = "minikab";
    p.system = "A64FX";
    p.nodes = 1;
    p.ranks = 8;
    p.threads = 1;
    p.config = "rows=150000;nnz=2000000;iters=30;solver=cg";  // defaults spelled
    specs.push_back(p);

    p = as::PointSpec{};
    p.app = "nekbone";
    p.system = "A64FX";
    p.nodes = 2;
    p.ranks = 16;
    p.threads = 7;  // nekbone forces threads=1; must not split the key
    p.config = "nx1=8;elems=6;iters=15";
    specs.push_back(p);

    p = as::PointSpec{};
    p.app = "cosa";
    p.system = "A64FX";
    p.nodes = 1;
    p.ranks = 8;
    p.config = "blocks=4;cells=60000;harmonics=2;iters=10";
    specs.push_back(p);

    return specs;
}

std::vector<std::string> batch_reference(const std::vector<as::PointSpec>& specs,
                                         int jobs) {
    const std::vector<armstice::apps::AppResult> batch =
        as::batch_eval(specs, jobs);
    std::vector<std::string> bytes;
    bytes.reserve(batch.size());
    for (const auto& r : batch) bytes.push_back(as::encode_result(r));
    return bytes;
}

} // namespace

TEST_F(ServeDifferential, BatchJobs1AndJobs8AreBitIdentical) {
    const auto specs = wire_specs();
    const auto ref1 = batch_reference(specs, 1);
    ac::reset_sweep_cache();  // jobs=8 run must not just replay the memo
    const auto ref8 = batch_reference(specs, 8);
    ASSERT_EQ(ref1.size(), ref8.size());
    for (std::size_t i = 0; i < ref1.size(); ++i) {
        EXPECT_EQ(ref1[i], ref8[i]) << "point " << i;
    }
}

TEST_F(ServeDifferential, ServedBytesMatchBatchColdAndWarm) {
    const auto specs = wire_specs();
    const auto reference = batch_reference(specs, 1);
    ac::reset_sweep_cache();  // server starts cold: it must compute, not memo

    auto server = make_server_config();
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);

    // Cold pass: every distinct key computed server-side.
    const auto cold = client.sweep(specs);
    ASSERT_FALSE(cold.retry);
    ASSERT_EQ(cold.points.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(cold.points[i].ok) << cold.points[i].payload;
        EXPECT_EQ(cold.points[i].payload, reference[i]) << "point " << i;
        EXPECT_EQ(cold.points[i].index, i);
        // Payloads decode back to a usable AppResult.
        EXPECT_NO_THROW((void)as::decode_result(cold.points[i].payload));
    }
    EXPECT_EQ(cold.done.points, specs.size());
    EXPECT_EQ(cold.done.errors, 0u);

    // Warm pass on the same server: all points come from the serve cache and
    // carry the same bytes.
    const auto warm = client.sweep(specs);
    ASSERT_FALSE(warm.retry);
    ASSERT_EQ(warm.points.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(warm.points[i].ok);
        EXPECT_EQ(warm.points[i].payload, reference[i]) << "point " << i;
        EXPECT_EQ(warm.points[i].origin, as::PointOrigin::kCached)
            << "point " << i;
    }
    EXPECT_EQ(warm.done.cached, specs.size());
    server.stop();
}

TEST_F(ServeDifferential, ServedBytesMatchBatchThroughTheDiskCache) {
    // Batch populates the persistent cache; a fresh server process (modelled
    // by resetting the memo cache) must serve the *disk* bytes — still
    // bit-identical, because doubles persist bit-exact.
    ac::set_cache_dir((dir_ / "cache").string());
    const auto specs = wire_specs();
    const auto reference = batch_reference(specs, 1);
    ASSERT_GT(ac::cache_store()->stats().stores, 0u);

    ac::reset_sweep_cache();  // memo gone; disk remains
    auto server = make_server_config();
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    const auto reply = client.sweep(specs);
    ASSERT_FALSE(reply.retry);
    ASSERT_EQ(reply.points.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(reply.points[i].ok);
        EXPECT_EQ(reply.points[i].payload, reference[i]) << "point " << i;
    }
    // The server's computations were disk hits, not re-evaluations.
    const auto ss = ac::sweep_stats();
    const auto cs = ac::cache_store()->stats();
    EXPECT_EQ(ss.disk_hits, static_cast<long>(specs.size()))
        << "sweep: hits=" << ss.hits << " disk_hits=" << ss.disk_hits
        << " disk_misses=" << ss.disk_misses << " misses=" << ss.misses
        << " stores=" << ss.disk_stores << " | store: probes=" << cs.probes
        << " hits=" << cs.hits << " rejected=" << cs.rejected
        << " stores=" << cs.stores << " store_failures=" << cs.store_failures;
    server.stop();
}

TEST_F(ServeDifferential, EquivalentSpellingsShareOneComputationAndOneByteStream) {
    // Same simulation, three spellings: scrambled key order, defaults
    // spelled out, defaults omitted. Canonicalization must collapse them to
    // one key — so the server computes once and all three stream the same
    // bytes.
    as::PointSpec tidy;
    tidy.app = "minikab";
    tidy.system = "A64FX";
    tidy.nodes = 1;
    tidy.ranks = 8;
    tidy.threads = 1;
    tidy.config = "rows=120000;nnz=1500000;iters=20;solver=cg";

    as::PointSpec scrambled = tidy;
    scrambled.config = "iters=20;nnz=1500000;rows=120000;solver=cg";
    as::PointSpec defaulted = tidy;
    defaulted.config = "iters=20;nnz=1500000;rows=120000";  // cg is the default

    auto server = make_server_config();
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    const auto reply = client.sweep({tidy, scrambled, defaulted});
    ASSERT_FALSE(reply.retry);
    ASSERT_EQ(reply.points.size(), 3u);
    ASSERT_TRUE(reply.points[0].ok) << reply.points[0].payload;
    EXPECT_EQ(reply.points[1].payload, reply.points[0].payload);
    EXPECT_EQ(reply.points[2].payload, reply.points[0].payload);
    EXPECT_EQ(server.service().stats().computed, 1);
    server.stop();
}

TEST_F(ServeDifferential, FigureAndScorecardBytesMatchBatch) {
    // Figures/scorecard are whole-artefact requests; the served bytes must
    // equal the batch renderers byte-for-byte.
    auto server = make_server_config(4);
    server.start();
    as::Client client = as::Client::connect_unix_path(sock_);
    EXPECT_EQ(client.figure(1), ac::fig1_csv(ac::run_fig1()));
    EXPECT_EQ(client.figure(4), ac::fig4_csv(ac::run_fig4()));
    server.stop();
}
