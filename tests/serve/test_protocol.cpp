// Wire-protocol round-trip and fuzz tests (DESIGN.md §14.1). Two invariants:
//
//   1. decode(encode(m)) reproduces m bit-identically for every frame type —
//      asserted by re-encoding the decoded message and comparing bytes, so
//      the check covers every field without a per-type operator==.
//   2. Decoding damaged bytes — truncations at every boundary, seeded
//      bit-flips, hostile lengths — always yields a typed DecodeStatus.
//      Never UB, never an exception, never a hang. The suite runs under
//      ASan/UBSan in CI (ARMSTICE_SANITIZE=ON), which turns "never UB" from
//      a hope into a gate.

#include "serve/protocol.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace as = armstice::serve;
namespace au = armstice::util;

namespace {

as::PointSpec spec(const std::string& app, int nodes, const std::string& cfg) {
    as::PointSpec p;
    p.app = app;
    p.system = "A64FX";
    p.nodes = nodes;
    p.ranks = 8 * nodes;
    p.threads = 3;
    p.config = cfg;
    return p;
}

/// One exemplar message per frame type, with every field non-default so a
/// dropped field cannot round-trip by accident.
std::vector<as::Message> corpus() {
    std::vector<as::Message> msgs;

    as::Message m;
    m.req_id = 7;
    m.body = as::Hello{1, 4, as::kMaxFrame};
    msgs.push_back(m);

    m.req_id = 0xdeadbeef;
    m.body = as::SweepRequest{{spec("minikab", 2, "rows=100000;iters=25"),
                               spec("nekbone", 4, "elems=8;nx1=10"),
                               spec("cosa", 1, "")}};
    msgs.push_back(m);

    m.req_id = 3;
    m.body = as::FigureRequest{5};
    msgs.push_back(m);

    m.req_id = 4;
    m.body = as::ScorecardRequest{};
    msgs.push_back(m);

    m.req_id = 5;
    m.body = as::StatsRequest{};
    msgs.push_back(m);

    m.req_id = 6;
    as::PointResult pr;
    pr.index = 17;
    pr.origin = as::PointOrigin::kCoalesced;
    pr.ok = true;
    pr.payload = std::string("\x00\x01\xff payload with NULs", 22);
    m.body = pr;
    msgs.push_back(m);

    m.req_id = 8;
    m.body = as::SweepDone{32, 5, 20, 7, 1};
    msgs.push_back(m);

    m.req_id = 9;
    m.body = as::FigureResult{2, "nodes,paper,model\n1,2.5,2.625\n"};
    msgs.push_back(m);

    m.req_id = 10;
    m.body = as::ScorecardResult{"== scorecard ==\nall good\n"};
    msgs.push_back(m);

    m.req_id = 11;
    as::StatsResult st;
    st.requests = 100;
    st.sweep_requests = 60;
    st.figure_requests = 20;
    st.scorecard_requests = 10;
    st.stats_requests = 10;
    st.points = 240;
    st.cache_hits = 100;
    st.coalesced = 80;
    st.computed = 55;
    st.point_errors = 5;
    st.retries = 3;
    st.protocol_errors = 2;
    st.sessions_opened = 12;
    st.sessions_active = 4;
    st.inflight = 6;
    st.uptime_s = 12.75;       // exactly representable: bit-exact round trip
    st.qps = 7.84375;
    st.rss_bytes = 123456789;
    m.body = st;
    msgs.push_back(m);

    m.req_id = 12;
    m.body = as::ErrorMsg{as::ErrorCode::kBadRequest, "unknown app 'hpl'"};
    msgs.push_back(m);

    m.req_id = 13;
    m.body = as::RetryLater{64, 64};
    msgs.push_back(m);

    return msgs;
}

} // namespace

TEST(ServeProtocol, EveryFrameTypeRoundTripsBitIdentical) {
    const auto msgs = corpus();
    ASSERT_EQ(msgs.size(), 12u) << "corpus must cover every FrameType";
    for (const auto& m : msgs) {
        const std::string bytes = as::encode_message(m);
        as::Message back;
        ASSERT_EQ(as::decode_message(bytes, back), as::DecodeStatus::kOk)
            << "frame type " << static_cast<int>(m.type());
        EXPECT_EQ(back.req_id, m.req_id);
        EXPECT_EQ(back.type(), m.type());
        // Re-encoding the decode must reproduce the original bytes exactly:
        // every field of every body survived.
        EXPECT_EQ(as::encode_message(back), bytes)
            << "frame type " << static_cast<int>(m.type());
    }
}

TEST(ServeProtocol, FrameTypeNumberingMatchesVariantOrder) {
    const auto msgs = corpus();
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(msgs[i].type()), i + 1);
    }
}

TEST(ServeProtocol, EmptyPayloadIsTyped) {
    as::Message out;
    EXPECT_EQ(as::decode_message("", out), as::DecodeStatus::kEmptyFrame);
}

TEST(ServeProtocol, UnknownFrameTypeIsTyped) {
    for (const std::uint8_t type : {std::uint8_t{0}, std::uint8_t{13},
                                    std::uint8_t{200}, std::uint8_t{255}}) {
        std::string bytes;
        bytes.push_back(static_cast<char>(type));
        bytes += std::string(4, '\0');  // req_id
        as::Message out;
        EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kUnknownType)
            << "type byte " << static_cast<int>(type);
    }
}

TEST(ServeProtocol, TrailingBytesAreTyped) {
    for (const auto& m : corpus()) {
        as::Message out;
        EXPECT_EQ(as::decode_message(as::encode_message(m) + '\0', out),
                  as::DecodeStatus::kTrailingBytes)
            << "frame type " << static_cast<int>(m.type());
    }
}

TEST(ServeProtocol, EveryTruncationIsTyped) {
    // Chop every message at every byte boundary: each prefix must decode to
    // a typed error (usually kTruncated; a 0-byte prefix is kEmptyFrame) —
    // and must not touch `out`.
    for (const auto& m : corpus()) {
        const std::string bytes = as::encode_message(m);
        for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
            as::Message out;
            out.req_id = 0xabad1dea;
            const as::DecodeStatus st =
                as::decode_message(bytes.substr(0, keep), out);
            EXPECT_NE(st, as::DecodeStatus::kOk)
                << "frame type " << static_cast<int>(m.type()) << " kept "
                << keep << "/" << bytes.size();
            EXPECT_EQ(out.req_id, 0xabad1dea) << "out mutated on failure";
        }
    }
}

TEST(ServeProtocol, SeededBitFlipsNeverEscapeTheTypedStatus) {
    // 2000 seeded mutations per frame type: flip 1-4 bits/bytes anywhere in
    // the payload. Decode must return *some* status; when it claims kOk the
    // decoded message must re-encode cleanly (i.e. it is a real message).
    // ASan/UBSan turn any out-of-bounds read or UB into a test failure.
    au::Rng rng(0xf1Ae5);
    for (const auto& m : corpus()) {
        const std::string bytes = as::encode_message(m);
        for (int trial = 0; trial < 2000; ++trial) {
            std::string mutated = bytes;
            const int flips = 1 + static_cast<int>(rng.next_below(4));
            for (int f = 0; f < flips; ++f) {
                const std::size_t pos =
                    static_cast<std::size_t>(rng.next_below(mutated.size()));
                mutated[pos] = static_cast<char>(
                    static_cast<unsigned char>(mutated[pos]) ^
                    (1u << rng.next_below(8)));
            }
            as::Message out;
            const as::DecodeStatus st = as::decode_message(mutated, out);
            if (st == as::DecodeStatus::kOk) {
                const std::string re = as::encode_message(out);
                EXPECT_EQ(re.size(), mutated.size());
            }
        }
    }
}

TEST(ServeProtocol, SeededTruncationPlusFlipCorpus) {
    // Combined damage: truncate to a random prefix, then flip a byte inside
    // what remains. The decoder must stay inside the typed-status contract.
    au::Rng rng(0x70ca7e);
    for (const auto& m : corpus()) {
        const std::string bytes = as::encode_message(m);
        for (int trial = 0; trial < 500; ++trial) {
            const std::size_t keep =
                static_cast<std::size_t>(rng.next_below(bytes.size() + 1));
            std::string mutated = bytes.substr(0, keep);
            if (!mutated.empty()) {
                const std::size_t pos =
                    static_cast<std::size_t>(rng.next_below(mutated.size()));
                mutated[pos] = static_cast<char>(
                    static_cast<unsigned char>(mutated[pos]) ^
                    (1u << rng.next_below(8)));
            }
            as::Message out;
            const as::DecodeStatus st = as::decode_message(mutated, out);
            if (st == as::DecodeStatus::kOk) {
                EXPECT_EQ(as::encode_message(out).size(), mutated.size());
            }
        }
    }
}

TEST(ServeProtocol, HostilePointCountCannotDriveAllocation) {
    // A SweepRequest claiming 2^32-1 points trips the hard per-request bound
    // before anything is reserved.
    std::string bytes;
    bytes.push_back(static_cast<char>(as::FrameType::kSweepRequest));
    bytes += std::string(4, '\0');                       // req_id
    bytes += std::string("\xff\xff\xff\xff", 4);         // point count
    as::Message out;
    EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kBadValue);

    // An in-bounds count whose specs cannot possibly fit the buffer trips
    // the allocation guard instead: the reserve() is bounded by what the
    // bytes can actually hold.
    const std::uint32_t n = as::kMaxPointsPerRequest;
    std::string guard;
    guard.push_back(static_cast<char>(as::FrameType::kSweepRequest));
    guard += std::string(4, '\0');
    for (int i = 0; i < 4; ++i) {
        guard.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
    }
    EXPECT_EQ(as::decode_message(guard, out), as::DecodeStatus::kTruncated);
}

TEST(ServeProtocol, ZeroAndOversizedPointCountsAreBadValues) {
    {
        std::string bytes;
        bytes.push_back(static_cast<char>(as::FrameType::kSweepRequest));
        bytes += std::string(4, '\0');    // req_id
        bytes += std::string(4, '\0');    // point count 0
        as::Message out;
        EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kBadValue);
    }
    {
        // kMaxPointsPerRequest+1, with enough buffer that the allocation
        // guard is not what trips first.
        const std::uint32_t n = as::kMaxPointsPerRequest + 1;
        std::string bytes;
        bytes.push_back(static_cast<char>(as::FrameType::kSweepRequest));
        bytes += std::string(4, '\0');
        for (int i = 0; i < 4; ++i) {
            bytes.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
        }
        bytes += std::string(static_cast<std::size_t>(n) * 22, '\0');
        as::Message out;
        EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kBadValue);
    }
}

TEST(ServeProtocol, ImpossibleEnumValuesAreBadValues) {
    {
        // PointResult with origin byte 3 (> kComputed).
        as::Message m;
        m.req_id = 1;
        as::PointResult pr;
        pr.index = 0;
        pr.origin = as::PointOrigin::kCached;
        pr.payload = "x";
        m.body = pr;
        std::string bytes = as::encode_message(m);
        bytes[5 + 4] = 3;  // header(5) + index(4) -> origin byte
        as::Message out;
        EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kBadValue);
    }
    {
        // ErrorMsg with code 0 and code kInternal+1.
        for (const std::uint32_t code : {0u, 6u}) {
            as::Message m;
            m.req_id = 1;
            m.body = as::ErrorMsg{as::ErrorCode::kBadFrame, "text"};
            std::string bytes = as::encode_message(m);
            for (int i = 0; i < 4; ++i) {
                bytes[5 + i] = static_cast<char>((code >> (8 * i)) & 0xff);
            }
            as::Message out;
            EXPECT_EQ(as::decode_message(bytes, out), as::DecodeStatus::kBadValue)
                << "code " << code;
        }
    }
}

TEST(ServeProtocol, OversizedPayloadIsTyped) {
    // decode_message itself enforces kMaxFrame for callers that bypass
    // read_frame's early rejection.
    const std::string big(as::kMaxFrame + 1, 'x');
    as::Message out;
    EXPECT_EQ(as::decode_message(big, out), as::DecodeStatus::kOversized);
}
