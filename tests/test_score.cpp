// Tests of the reproduction scorecard: the aggregate the project promises.

#include "core/score.hpp"

#include <gtest/gtest.h>

namespace ac = armstice::core;

TEST(Scorecard, AllShapeFindingsHold) {
    const auto card = ac::compute_scorecard();
    for (const auto& e : card.entries) {
        EXPECT_TRUE(e.shape_ok) << e.artefact << ": " << e.shape_note;
    }
}

TEST(Scorecard, CoversEveryEvaluatedArtefact) {
    const auto card = ac::compute_scorecard();
    EXPECT_EQ(card.shapes_total(), 11);  // Tables III-VII, IX, X + Figs 1-4
    EXPECT_GT(card.total_points(), 55);  // every published numeric value
}

TEST(Scorecard, AnchoredPointsWithinFivePercent) {
    const auto card = ac::compute_scorecard();
    for (const auto& e : card.entries) {
        if (e.artefact.find("Table III") == std::string::npos &&
            e.artefact.find("Table V") == std::string::npos &&
            e.artefact.find("Table VI") == std::string::npos &&
            e.artefact.find("Table IX") == std::string::npos) {
            continue;
        }
        EXPECT_EQ(e.within_5pct, e.points) << e.artefact;
    }
}

TEST(Scorecard, PredictionsMostlyWithinTwentyPercent) {
    const auto card = ac::compute_scorecard();
    int points = 0, within = 0;
    for (const auto& e : card.entries) {
        points += e.points;
        within += e.within_20pct;
    }
    // Known exceptions: ARCHER's Table IV outlier column and Fulhame's
    // Table X 4-node outlier (see EXPERIMENTS.md "Known deviations").
    EXPECT_GE(within, points - 5);
}

TEST(Scorecard, GeomeanRatiosNearUnity) {
    const auto card = ac::compute_scorecard();
    for (const auto& e : card.entries) {
        if (e.points == 0) continue;
        EXPECT_GT(e.geomean_ratio, 0.9) << e.artefact;
        EXPECT_LT(e.geomean_ratio, 1.12) << e.artefact;
    }
}

TEST(Scorecard, RenderListsEveryEntry) {
    const auto card = ac::compute_scorecard();
    const std::string s = ac::render_scorecard(card);
    for (const auto& e : card.entries) {
        EXPECT_NE(s.find(e.artefact), std::string::npos);
    }
    EXPECT_NE(s.find("Totals:"), std::string::npos);
}
