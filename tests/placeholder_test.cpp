#include <gtest/gtest.h>
TEST(Placeholder, Builds) { EXPECT_TRUE(true); }
