// Differential harness: sim::Engine and sim::RefEngine must produce
// bit-for-bit identical RunResults on generated program sets (DESIGN.md
// §10.1) — the acceptance bar is >= 500 seeds with 8 perturbed schedules
// each, which DifferentialSuite runs in one go via check::run_suite.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/ref_engine.hpp"
#include "sim_testlib.hpp"

#include <gtest/gtest.h>

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace ck = armstice::sim::check;

TEST(Differential, SuiteOf500SeedsIsBitIdentical) {
    ck::CheckConfig cfg;
    cfg.seeds = 500;
    cfg.perturbations = 8;
    cfg.deadlock_every = 8;
    const auto rep = ck::run_suite(aa::fulhame(), cfg);
    EXPECT_EQ(rep.cases, 500);
    EXPECT_GT(rep.deadlock_cases, 0);
    EXPECT_TRUE(rep.ok()) << rep.render();
}

TEST(Differential, RefEngineMatchesEngineOnEveryRoundType) {
    // Fixed rank count so every round type (incl. pairs and funnels) is
    // reachable; invariants assert on the engine result, bit-identity on the
    // pair.
    for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
        ck::GenConfig g;
        g.ranks = 8;
        const auto gc = ck::generate(seed, g);
        const auto placement =
            as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1);
        const as::Engine eng(aa::fulhame(), placement, 0.8);
        const as::RefEngine ref(aa::fulhame(), placement, 0.8);
        const auto a = eng.run(gc.programs);
        armstice::testlib::assert_invariants(gc, a);
        armstice::testlib::assert_bit_identical(a, ref.run(gc.programs),
                                                "engine vs ref");
    }
}

TEST(Differential, RefEngineMatchesUnderZeroNoiseToo) {
    // os_noise = 0 exercises the noise-free branch of both engines.
    ck::GenConfig g;
    g.ranks = 6;
    const auto gc = ck::generate(77, g);
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const auto placement = as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1);
    const as::Engine eng(aa::fulhame(), placement, 0.8, knobs);
    const as::RefEngine ref(aa::fulhame(), placement, 0.8, knobs);
    armstice::testlib::assert_bit_identical(eng.run(gc.programs),
                                            ref.run(gc.programs),
                                            "engine vs ref (no noise)");
}

TEST(Differential, DiffResultsReportsFirstDifference) {
    ck::GenConfig g;
    g.ranks = 4;
    const auto gc = ck::generate(5, g);
    const auto placement = as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1);
    const as::Engine eng(aa::fulhame(), placement, 0.8);
    const auto a = eng.run(gc.programs);
    EXPECT_EQ(ck::diff_results(a, a), "");

    auto b = a;
    b.makespan *= 1.0 + 1e-15;  // one-ulp-ish change must be caught
    EXPECT_NE(ck::diff_results(a, b), "");

    auto c = a;
    c.ranks.back().msgs_received += 1;
    const auto d = ck::diff_results(a, c);
    EXPECT_NE(d.find("msgs_received"), std::string::npos) << d;
}

TEST(Differential, GeneratorIsDeterministic) {
    const auto a = ck::generate(123);
    const auto b = ck::generate(123);
    ASSERT_EQ(a.ranks, b.ranks);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (std::size_t r = 0; r < a.programs.size(); ++r) {
        EXPECT_TRUE(a.programs[r] == b.programs[r]) << "rank " << r;
    }
    EXPECT_NE(ck::generate(124).programs, b.programs);
}
