// Deadlock forensics (DESIGN.md §10.3): on a stall the engines throw
// sim::DeadlockError carrying a wait-for graph — who blocks on which recv
// source/tag or collective membership, with one extracted blocking cycle.
// The rendered report is a golden-tested, byte-stable diagnostic, required
// identical between Engine, RefEngine and every perturbed schedule.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/deadlock.hpp"
#include "sim/engine.hpp"
#include "sim/ref_engine.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace ck = armstice::sim::check;

namespace {

as::Engine make_engine(int ranks) {
    return {aa::fulhame(), as::Placement::block(aa::fulhame().node, 2, ranks, 1),
            0.8};
}

/// Run and return the caught diagnosis; fails the test if no deadlock.
std::string diagnose(const as::Engine& eng, const std::vector<as::Program>& progs,
                     const as::RunOptions& opts = {}) {
    try {
        (void)eng.run(progs, opts);
    } catch (const as::DeadlockError& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a deadlock";
    return "";
}

} // namespace

TEST(DeadlockForensics, ThreeRankRecvCycleGoldenReport) {
    std::vector<as::Program> progs(3);
    progs[0].recv(1, 7);
    progs[1].recv(2, 7);
    progs[2].recv(0, 7);
    const auto eng = make_engine(3);
    const std::string expected =
        "deadlock: 3 of 3 ranks blocked (blocking cycle of 3)\n"
        "wait-for graph:\n"
        "  rank 0: recv(src=1, tag=7) at op 0 -> waits on rank 1\n"
        "  rank 1: recv(src=2, tag=7) at op 0 -> waits on rank 2\n"
        "  rank 2: recv(src=0, tag=7) at op 0 -> waits on rank 0\n"
        "cycle: rank 0 -> rank 1 -> rank 2 -> rank 0";
    EXPECT_EQ(diagnose(eng, progs), expected);

    // The structured graph carries the same facts for tooling.
    try {
        (void)eng.run(progs);
        FAIL() << "expected a deadlock";
    } catch (const as::DeadlockError& e) {
        const as::WaitForGraph& g = e.graph();
        EXPECT_EQ(g.total_ranks, 3);
        EXPECT_EQ(g.blocked.size(), 3u);
        EXPECT_EQ(g.cycle, (std::vector<int>{0, 1, 2}));
        ASSERT_NE(g.node_of(1), nullptr);
        EXPECT_EQ(g.node_of(1)->op, "recv(src=2, tag=7)");
        EXPECT_EQ(g.node_of(1)->waits_on, (std::vector<int>{2}));
        EXPECT_EQ(g.render(), expected);
    }
}

TEST(DeadlockForensics, DiagnosisNamesEveryBlockedRankAndPendingOp) {
    // One golden string pinning the full report shape for a mixed stall:
    // rank 0 made progress (pc 1) before blocking on a rank that finished.
    std::vector<as::Program> progs(3);
    progs[0].send(1, 8, 0).recv(1, 9);
    progs[1].recv(0, 0);
    // rank 2 runs nothing and finishes immediately.
    const auto eng = make_engine(3);
    EXPECT_EQ(diagnose(eng, progs),
              "deadlock: 1 of 3 ranks blocked (no blocking cycle: some rank"
              " finished without satisfying a peer)\n"
              "wait-for graph:\n"
              "  rank 0: recv(src=1, tag=9) at op 1 -> waits on rank 1"
              " (finished)\n");
}

TEST(DeadlockForensics, PartialCollectiveNamesKindBytesAndOrdinal) {
    std::vector<as::Program> progs(3);
    for (auto& p : progs) p.allreduce(8);  // collective #0 completes
    progs[0].barrier();
    progs[1].barrier();  // rank 2 skips collective #1
    const auto eng = make_engine(3);
    EXPECT_EQ(diagnose(eng, progs),
              "deadlock: 2 of 3 ranks blocked (no blocking cycle: some rank"
              " finished without satisfying a peer)\n"
              "wait-for graph:\n"
              "  rank 0: barrier(8 bytes) #1 at op 1 -> waits on rank 2"
              " (finished)\n"
              "  rank 1: barrier(8 bytes) #1 at op 1 -> waits on rank 2"
              " (finished)\n");

    std::vector<as::Program> aa_progs(3);
    aa_progs[0].alltoall(256);
    aa_progs[1].alltoall(256);
    EXPECT_NE(diagnose(eng, aa_progs).find("alltoall(256 bytes) #0"),
              std::string::npos);
}

TEST(DeadlockForensics, AnySourceWithNoLivePeer) {
    std::vector<as::Program> progs(3);
    progs[0].recv(as::kAnySource, 5);
    const auto eng = make_engine(3);
    EXPECT_EQ(diagnose(eng, progs),
              "deadlock: 1 of 3 ranks blocked (no blocking cycle: some rank"
              " finished without satisfying a peer)\n"
              "wait-for graph:\n"
              "  rank 0: recv(src=any, tag=5) at op 0 -> waits on no live"
              " peer\n");
}

TEST(DeadlockForensics, EngineRefEngineAndPerturbedSchedulesAgreeByteForByte) {
    for (auto kind : {ck::DeadlockKind::unmatched_recv, ck::DeadlockKind::recv_cycle,
                      ck::DeadlockKind::skipped_collective}) {
        ck::GenConfig g;
        g.ranks = 7;
        g.deadlock = kind;
        const auto gc = ck::generate(99, g);
        const auto eng = make_engine(gc.ranks);
        const as::RefEngine ref(
            aa::fulhame(), as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1),
            0.8);
        const std::string base = diagnose(eng, gc.programs);
        ASSERT_FALSE(base.empty()) << gc.note;
        try {
            (void)ref.run(gc.programs);
            FAIL() << "RefEngine missed the deadlock: " << gc.note;
        } catch (const as::DeadlockError& e) {
            EXPECT_EQ(std::string(e.what()), base) << gc.note;
        }
        for (int k = 1; k <= 4; ++k) {
            as::RunOptions opts;
            opts.perturb_seed = 0xdead0000ULL + static_cast<std::uint64_t>(k);
            EXPECT_EQ(diagnose(eng, gc.programs, opts), base) << gc.note;
        }
    }
}

TEST(DeadlockForensics, DerivesUtilDeadlockErrorForExistingCatchSites) {
    std::vector<as::Program> progs(3);
    progs[0].recv(1, 3);
    const auto eng = make_engine(3);
    EXPECT_THROW((void)eng.run(progs), armstice::util::DeadlockError);
    EXPECT_THROW((void)eng.run(progs), armstice::util::Error);
}
