// Schedule-perturbation determinism (DESIGN.md §10.2): RunOptions::
// perturb_seed scrambles the engine's runnable-queue pop order, and every
// RunResult field must stay bit-identical — the engine's results are a pure
// function of the programs, never of the schedule.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/ref_engine.hpp"
#include "sim_testlib.hpp"

#include <gtest/gtest.h>

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace ck = armstice::sim::check;

namespace {

as::Engine make_engine(int ranks) {
    return {aa::fulhame(), as::Placement::block(aa::fulhame().node, 2, ranks, 1),
            0.8};
}

} // namespace

TEST(Perturb, GeneratedCasesBitIdenticalAcrossEightSeeds) {
    for (std::uint64_t seed : {3ull, 14ull, 159ull}) {
        ck::GenConfig g;
        g.ranks = 10;
        const auto gc = ck::generate(seed, g);
        const auto eng = make_engine(gc.ranks);
        const auto base = eng.run(gc.programs);
        for (int k = 1; k <= 8; ++k) {
            as::RunOptions opts;
            opts.perturb_seed = 0xabcdef00ULL + static_cast<std::uint64_t>(k);
            armstice::testlib::assert_bit_identical(base,
                                                    eng.run(gc.programs, opts),
                                                    "perturbed schedule");
        }
    }
}

TEST(Perturb, AnySourceFunnelIsScheduleInvariant) {
    // The historical failure mode: an eager ANY_SOURCE match consumes
    // whichever message the schedule delivered first. Distinct payload sizes
    // give every message a distinct arrival, so any matching difference
    // changes recv_wait bits.
    const int ranks = 8;
    std::vector<as::Program> progs(ranks);
    for (int r = 1; r < ranks; ++r) {
        progs[static_cast<std::size_t>(r)].send(0, 1e4 * r, /*tag=*/1);
    }
    for (int i = 1; i < ranks; ++i) {
        progs[0].recv(as::kAnySource, /*tag=*/1);
    }
    for (int r = 1; r < ranks; ++r) {
        progs[0].send(r, 64.0, /*tag=*/2);
        progs[static_cast<std::size_t>(r)].recv(0, /*tag=*/2);
    }
    const auto eng = make_engine(ranks);
    const auto base = eng.run(progs);
    EXPECT_EQ(base.ranks[0].msgs_received, ranks - 1);
    for (int k = 1; k <= 8; ++k) {
        as::RunOptions opts;
        opts.perturb_seed = static_cast<std::uint64_t>(k) * 0x9e3779b9ULL;
        armstice::testlib::assert_bit_identical(base, eng.run(progs, opts),
                                                "perturbed ANY_SOURCE funnel");
    }
    // And the naive interpreter agrees bit-for-bit.
    const as::RefEngine ref(
        aa::fulhame(), as::Placement::block(aa::fulhame().node, 2, ranks, 1), 0.8);
    armstice::testlib::assert_bit_identical(base, ref.run(progs),
                                            "ref ANY_SOURCE funnel");
}

TEST(Perturb, PerturbationActuallyChangesTheSchedule) {
    // The hook must genuinely permute execution, not just be ignored: with
    // enough concurrent compute the trace's global span interleaving differs
    // between the canonical and a perturbed run, while the RunResult is
    // bit-identical.
    ck::GenConfig g;
    g.ranks = 12;
    g.rounds = 6;
    const auto gc = ck::generate(42, g);
    const auto eng = make_engine(gc.ranks);

    as::Trace canonical;
    const auto base = eng.run(gc.programs, &canonical);
    bool any_interleaving_differs = false;
    for (int k = 1; k <= 8 && !any_interleaving_differs; ++k) {
        as::RunOptions opts;
        opts.perturb_seed = 0x7001ULL + static_cast<std::uint64_t>(k);
        as::Trace perturbed;
        const auto res = eng.run(gc.programs, opts, &perturbed);
        armstice::testlib::assert_bit_identical(base, res, "perturbed w/ trace");
        ASSERT_EQ(canonical.spans().size(), perturbed.spans().size());
        for (std::size_t i = 0; i < canonical.spans().size(); ++i) {
            if (canonical.spans()[i].rank != perturbed.spans()[i].rank) {
                any_interleaving_differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_interleaving_differs)
        << "8 perturbation seeds never changed the pop order";
}

TEST(Perturb, ZeroSeedIsCanonical) {
    ck::GenConfig g;
    g.ranks = 6;
    const auto gc = ck::generate(7, g);
    const auto eng = make_engine(gc.ranks);
    as::Trace a;
    as::Trace b;
    (void)eng.run(gc.programs, &a);
    (void)eng.run(gc.programs, as::RunOptions{}, &b);
    ASSERT_EQ(a.spans().size(), b.spans().size());
    for (std::size_t i = 0; i < a.spans().size(); ++i) {
        EXPECT_EQ(a.spans()[i].rank, b.spans()[i].rank);
    }
}
