// The checker itself must be thread-invariant: check::run_suite aggregates
// per-seed results in seed order, so the report — down to the rendered
// string — is identical whether the cases ran on 1 thread or 8.

#include "arch/system.hpp"
#include "sim/check.hpp"

#include <gtest/gtest.h>

namespace aa = armstice::arch;
namespace ck = armstice::sim::check;

namespace {

ck::CheckConfig small_cfg(int jobs) {
    ck::CheckConfig cfg;
    cfg.seeds = 48;
    cfg.perturbations = 4;
    cfg.deadlock_every = 4;
    cfg.jobs = jobs;
    return cfg;
}

} // namespace

TEST(CheckJobs, ReportIdenticalAtOneAndEightJobs) {
    const auto r1 = ck::run_suite(aa::fulhame(), small_cfg(1));
    const auto r8 = ck::run_suite(aa::fulhame(), small_cfg(8));
    EXPECT_TRUE(r1.ok()) << r1.render();
    EXPECT_EQ(r1.cases, r8.cases);
    EXPECT_EQ(r1.deadlock_cases, r8.deadlock_cases);
    EXPECT_EQ(r1.failures, r8.failures);
    EXPECT_EQ(r1.render(), r8.render());
}

TEST(CheckJobs, FailureLinesStaySeedOrderedAcrossJobCounts) {
    // Misuse the config to force failures deterministically: a fixed rank
    // count of 2 makes recv_cycle generation throw inside the checker (it
    // needs >= 3 ranks), which run_suite must convert into seed-tagged
    // failure lines in seed order at any job count.
    ck::CheckConfig cfg;
    cfg.seeds = 24;
    cfg.ranks = 2;
    cfg.perturbations = 2;
    cfg.deadlock_every = 2;
    const auto r1 = ck::run_suite(aa::fulhame(), cfg);
    cfg.jobs = 8;
    const auto r8 = ck::run_suite(aa::fulhame(), cfg);
    EXPECT_EQ(r1.failures, r8.failures);
    EXPECT_EQ(r1.render(), r8.render());
    ASSERT_FALSE(r1.failures.empty());
    EXPECT_NE(r1.failures.front().find("seed "), std::string::npos);
}
