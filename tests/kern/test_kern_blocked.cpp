// Blocked-kernel conformance suite (DESIGN.md §12): the cache-blocked GEMM,
// ZGEMM, SpMV and stencil sweeps must be bit-identical to their unblocked
// references — EXPECT_EQ on every output double, on residual histories and
// on OpCounts — at jobs 1 and jobs 8, on shapes that do not divide the tile
// sizes, and at the n = 0 / n = 1 degenerate edges. Cache blocking is a
// pure loop-order transformation here; any reassociation it introduced
// would fail these as a bit mismatch, not a tolerance miss.

#include "kern/dense/blas.hpp"
#include "kern/par.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/csr.hpp"
#include "kern/stencil/taylor_green.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

namespace ak = armstice::kern;
namespace par = armstice::kern::par;

namespace {

class BlockedConformance : public ::testing::TestWithParam<int> {
protected:
    void TearDown() override { par::set_jobs(0); }

    static std::vector<double> random_vector(std::size_t n, unsigned long seed) {
        armstice::util::Rng rng(seed);
        std::vector<double> v(n);
        for (auto& x : v) x = rng.uniform(-1.0, 1.0);
        return v;
    }

    static std::vector<ak::cplx> random_cvector(std::size_t n, unsigned long seed) {
        armstice::util::Rng rng(seed);
        std::vector<ak::cplx> v(n);
        for (auto& x : v) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        return v;
    }
};

void expect_counts_eq(const ak::OpCounts& a, const ak::OpCounts& b) {
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
}

} // namespace

// Shapes straddle the tile sizes (gemm kBlock = 64, zgemm kZBlock = 48,
// SpMV row tile 256) and include non-divisible remainders and degenerate
// edges.
INSTANTIATE_TEST_SUITE_P(Jobs, BlockedConformance, ::testing::Values(1, 8));

TEST_P(BlockedConformance, GemmMatchesNaiveBitExactly) {
    par::set_jobs(GetParam());
    for (const auto [m, k, n] : {std::array{0, 7, 5}, std::array{1, 1, 1},
                                 std::array{5, 0, 3}, std::array{63, 64, 65},
                                 std::array{130, 67, 93}}) {
        const auto a = random_vector(static_cast<std::size_t>(m) * k, 11);
        const auto b = random_vector(static_cast<std::size_t>(k) * n, 13);
        std::vector<double> c(static_cast<std::size_t>(m) * n, -7.0);
        std::vector<double> ref(c.size(), 3.0);
        ak::gemm(a, b, c, m, k, n);
        ak::gemm_naive(a, b, ref, m, k, n);
        ASSERT_EQ(c.size(), ref.size());
        for (std::size_t i = 0; i < c.size(); ++i) {
            EXPECT_EQ(c[i], ref[i]) << "m=" << m << " k=" << k << " n=" << n;
        }
    }
}

TEST_P(BlockedConformance, ZgemmMatchesNaiveBitExactly) {
    par::set_jobs(GetParam());
    for (const auto [m, k, n] : {std::array{0, 3, 2}, std::array{1, 1, 1},
                                 std::array{2, 0, 2}, std::array{47, 48, 49},
                                 std::array{100, 53, 71}}) {
        const auto a = random_cvector(static_cast<std::size_t>(m) * k, 17);
        const auto b = random_cvector(static_cast<std::size_t>(k) * n, 19);
        std::vector<ak::cplx> c(static_cast<std::size_t>(m) * n);
        std::vector<ak::cplx> ref(c.size());
        ak::zgemm(a, b, c, m, k, n);
        ak::zgemm_naive(a, b, ref, m, k, n);
        for (std::size_t i = 0; i < c.size(); ++i) {
            EXPECT_EQ(c[i].real(), ref[i].real()) << "m=" << m;
            EXPECT_EQ(c[i].imag(), ref[i].imag()) << "m=" << m;
        }
    }
}

TEST_P(BlockedConformance, SpmvMatchesUnblockedBitExactly) {
    par::set_jobs(GetParam());
    // poisson27 exercises clustered columns; random_spd scatters them across
    // the full column range, straddling many 64 Ki column tiles at n = 200k.
    const std::vector<ak::CsrMatrix> mats = {
        ak::poisson27(13, 9, 7), ak::poisson7(5, 5, 5),
        ak::random_spd(200000, 3, 42), ak::random_spd(1, 0, 1),
        ak::CsrMatrix(0, 0, {}), ak::CsrMatrix(3, 0, {}),
        ak::CsrMatrix(4, 5, {{0, 4, 2.5}, {3, 0, -1.0}}),  // rows with no entries
    };
    for (const auto& A : mats) {
        const auto x = random_vector(static_cast<std::size_t>(A.cols()), 23);
        std::vector<double> y(static_cast<std::size_t>(A.rows()), -1.0);
        std::vector<double> ref(y.size(), 2.0);
        ak::OpCounts cb, cu;
        A.spmv(x, y, &cb);
        A.spmv_unblocked(x, ref, &cu);
        for (std::size_t i = 0; i < y.size(); ++i) {
            EXPECT_EQ(y[i], ref[i]) << "rows=" << A.rows() << " i=" << i;
        }
        expect_counts_eq(cb, cu);  // identical traffic model for both paths
    }
}

TEST_P(BlockedConformance, CgResidualHistoryIdenticalThroughBlockedSpmv) {
    // End-to-end: a CG solve routed through the blocked SpMV must walk the
    // exact same residual history as one through the unblocked reference —
    // the iteration count and every residual bit included.
    par::set_jobs(GetParam());
    const auto A = ak::random_spd(3000, 4, 7);
    const auto b = random_vector(static_cast<std::size_t>(A.rows()), 29);

    auto solve = [&](bool blocked) {
        std::vector<double> x(static_cast<std::size_t>(A.rows()), 0.0);
        std::vector<double> r = b, p = b, ap(b.size());
        std::vector<double> hist;
        double rr = ak::dot(r, r);
        for (int it = 0; it < 50 && rr > 1e-20; ++it) {
            if (blocked) {
                A.spmv(p, ap);
            } else {
                A.spmv_unblocked(p, ap);
            }
            const double alpha = rr / ak::dot(p, ap);
            ak::axpy(alpha, p, x);
            ak::axpy(-alpha, ap, r);
            const double rr_new = ak::dot(r, r);
            hist.push_back(rr_new);
            const double beta = rr_new / rr;
            rr = rr_new;
            for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
        }
        return std::pair{std::move(x), std::move(hist)};
    };

    const auto [x_blocked, h_blocked] = solve(true);
    const auto [x_ref, h_ref] = solve(false);
    ASSERT_EQ(h_blocked.size(), h_ref.size());
    for (std::size_t i = 0; i < h_ref.size(); ++i) EXPECT_EQ(h_blocked[i], h_ref[i]);
    for (std::size_t i = 0; i < x_ref.size(); ++i) EXPECT_EQ(x_blocked[i], x_ref[i]);
}

TEST_P(BlockedConformance, StencilTilingPreservesStateBitExactly) {
    // Tiled (default 16, plus a deliberately awkward 5 that does not divide
    // n = 12) vs unblocked (tile_j = 0) TaylorGreen: identical state after
    // several RK3 steps, inviscid and viscous.
    par::set_jobs(GetParam());
    for (const double nu : {0.0, 1e-3}) {
        for (const int tile : {ak::TaylorGreen::kDefaultTileJ, 5, 1}) {
            ak::TaylorGreen blocked(12, 0.1, nu, tile);
            ak::TaylorGreen reference(12, 0.1, nu, /*tile_j=*/0);
            ak::OpCounts cb, cu;
            for (int s = 0; s < 3; ++s) {
                const double dt = reference.stable_dt();
                blocked.step(dt, &cb);
                reference.step(dt, &cu);
            }
            const auto& ub = blocked.state();
            const auto& ur = reference.state();
            ASSERT_EQ(ub.size(), ur.size());
            for (std::size_t i = 0; i < ur.size(); ++i) {
                EXPECT_EQ(ub[i], ur[i]) << "nu=" << nu << " tile=" << tile;
            }
            expect_counts_eq(cb, cu);
        }
    }
}

TEST_P(BlockedConformance, BlockedKernelsReportTileWorkingSets) {
    // The ws_bytes channel (ECM model input): blocked kernels report their
    // tile footprint, never more than the whole problem.
    par::set_jobs(GetParam());
    ak::OpCounts c;
    const auto A = ak::poisson27(16, 16, 16);
    const auto x = random_vector(static_cast<std::size_t>(A.cols()), 31);
    std::vector<double> y(static_cast<std::size_t>(A.rows()));
    A.spmv(x, y, &c);
    EXPECT_GT(c.ws_bytes, 0.0);
    EXPECT_LE(c.ws_bytes, 8.0 * (64.0 * 1024.0 + 2.0 * 256.0));

    ak::OpCounts g;
    const int m = 96;
    const auto a = random_vector(static_cast<std::size_t>(m) * m, 37);
    const auto b = random_vector(static_cast<std::size_t>(m) * m, 41);
    std::vector<double> cmat(static_cast<std::size_t>(m) * m);
    ak::gemm(a, b, cmat, m, m, m, 0.0, &g);
    EXPECT_GT(g.ws_bytes, 0.0);
    EXPECT_LE(g.ws_bytes, 3.0 * 64.0 * 64.0 * 8.0);
}
