// Tests of the block-decomposition substrate behind the COSA model.

#include "kern/mesh/blocks.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ak = armstice::kern;

TEST(BlockDistribution, OwnershipCoversAllBlocks) {
    const auto d = ak::BlockDistribution::round_robin(10, 3);
    EXPECT_EQ(d.owner.size(), 10u);
    int total = std::accumulate(d.blocks_of.begin(), d.blocks_of.end(), 0);
    EXPECT_EQ(total, 10);
    EXPECT_EQ(d.max_blocks_per_rank, 4);  // rank 0: blocks 0,3,6,9
    EXPECT_EQ(d.active_ranks, 3);
}

TEST(BlockDistribution, ExactDivisionIsBalanced) {
    const auto d = ak::BlockDistribution::round_robin(800, 800);
    EXPECT_EQ(d.max_blocks_per_rank, 1);
    EXPECT_DOUBLE_EQ(d.balance(), 1.0);
}

TEST(BlockDistribution, MoreRanksThanBlocksLeavesIdle) {
    const auto d = ak::BlockDistribution::round_robin(5, 8);
    EXPECT_EQ(d.active_ranks, 5);
    EXPECT_EQ(d.blocks_of[7], 0);
    EXPECT_EQ(d.max_blocks_per_rank, 1);
}

class PaperDistributions
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PaperDistributions, MatchesPaperArithmetic) {
    // (ranks, expected max, expected active, expected ranks-with-max).
    const auto [ranks, max, active, with_max] = GetParam();
    const auto d = ak::BlockDistribution::round_robin(800, ranks);
    EXPECT_EQ(d.max_blocks_per_rank, max);
    EXPECT_EQ(d.active_ranks, active);
    const int count_max = static_cast<int>(std::count(
        d.blocks_of.begin(), d.blocks_of.end(), d.max_blocks_per_rank));
    EXPECT_EQ(count_max, with_max);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, PaperDistributions,
    ::testing::Values(
        // A64FX 16 nodes: 768 procs -> "32 processes with 2 blocks" (§VII.A.3)
        std::tuple{768, 2, 768, 32},
        // Fulhame 16 nodes: 1024 procs -> only 800 do work ("13 of the nodes")
        std::tuple{1024, 1, 800, 800},
        // ARCHER 16 nodes: 384 procs -> 800 = 2*384 + 32.
        std::tuple{384, 3, 384, 32},
        // 800 ranks exactly.
        std::tuple{800, 1, 800, 800}));

TEST(BlockDistribution, BalanceDefinition) {
    const auto d = ak::BlockDistribution::round_robin(800, 768);
    EXPECT_NEAR(d.balance(), (800.0 / 768.0) / 2.0, 1e-12);
}

TEST(BlockDistribution, BadShapesThrow) {
    EXPECT_THROW(ak::BlockDistribution::round_robin(0, 4), armstice::util::Error);
    EXPECT_THROW(ak::BlockDistribution::round_robin(4, 0), armstice::util::Error);
}

TEST(TileCells, SumsToGridSize) {
    for (int blocks : {1, 4, 9, 10, 25}) {
        const auto cells = ak::tile_cells(100, 80, blocks);
        EXPECT_EQ(static_cast<int>(cells.size()), blocks);
        long total = std::accumulate(cells.begin(), cells.end(), 0L);
        EXPECT_EQ(total, 100L * 80);
    }
}

TEST(TileCells, TilesNearUniform) {
    const auto cells = ak::tile_cells(96, 96, 16);
    const auto [lo, hi] = std::minmax_element(cells.begin(), cells.end());
    EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 1.3);
}
