// Tests of the dense symmetric eigensolver and Cholesky factorisation.

#include "kern/dense/blas.hpp"
#include "kern/dense/eigen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ak = armstice::kern;

namespace {

std::vector<double> random_symmetric(int n, unsigned long seed) {
    armstice::util::Rng rng(seed);
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            const double v = rng.uniform(-1, 1);
            a[static_cast<std::size_t>(i) * n + j] = v;
            a[static_cast<std::size_t>(j) * n + i] = v;
        }
    }
    return a;
}

std::vector<double> random_spd_dense(int n, unsigned long seed) {
    // A = B^T B + n*I.
    armstice::util::Rng rng(seed);
    std::vector<double> b(static_cast<std::size_t>(n) * n);
    for (auto& v : b) v = rng.uniform(-1, 1);
    std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            double s = 0;
            for (int k = 0; k < n; ++k) {
                s += b[static_cast<std::size_t>(k) * n + i] *
                     b[static_cast<std::size_t>(k) * n + j];
            }
            a[static_cast<std::size_t>(i) * n + j] = s + (i == j ? n : 0.0);
        }
    }
    return a;
}

} // namespace

TEST(EigenSym, DiagonalMatrixTrivial) {
    const std::vector<double> a{3, 0, 0, 0, 1, 0, 0, 0, 2};
    const auto res = ak::eigen_sym(a, 3);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.values[0], 1.0, 1e-12);
    EXPECT_NEAR(res.values[1], 2.0, 1e-12);
    EXPECT_NEAR(res.values[2], 3.0, 1e-12);
}

TEST(EigenSym, KnownTwoByTwo) {
    // [[2,1],[1,2]] has eigenvalues 1 and 3.
    const std::vector<double> a{2, 1, 1, 2};
    const auto res = ak::eigen_sym(a, 2);
    EXPECT_NEAR(res.values[0], 1.0, 1e-12);
    EXPECT_NEAR(res.values[1], 3.0, 1e-12);
}

class EigenRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigenRandom, ReconstructsMatrix) {
    const int n = GetParam();
    const auto a = random_symmetric(n, 7u + static_cast<unsigned long>(n));
    const auto res = ak::eigen_sym(a, n);
    ASSERT_TRUE(res.converged);
    // Check A v_j = lambda_j v_j for every eigenpair.
    for (int j = 0; j < n; ++j) {
        const double* vj = &res.vectors[static_cast<std::size_t>(j) * n];
        for (int i = 0; i < n; ++i) {
            double av = 0;
            for (int k = 0; k < n; ++k) {
                av += a[static_cast<std::size_t>(i) * n + k] * vj[k];
            }
            EXPECT_NEAR(av, res.values[static_cast<std::size_t>(j)] * vj[i], 1e-8)
                << "pair " << j;
        }
    }
}

TEST_P(EigenRandom, VectorsOrthonormal) {
    const int n = GetParam();
    const auto a = random_symmetric(n, 19u + static_cast<unsigned long>(n));
    const auto res = ak::eigen_sym(a, n);
    for (int j1 = 0; j1 < n; ++j1) {
        for (int j2 = 0; j2 <= j1; ++j2) {
            double d = 0;
            for (int i = 0; i < n; ++i) {
                d += res.vectors[static_cast<std::size_t>(j1) * n + i] *
                     res.vectors[static_cast<std::size_t>(j2) * n + i];
            }
            EXPECT_NEAR(d, j1 == j2 ? 1.0 : 0.0, 1e-9);
        }
    }
}

TEST_P(EigenRandom, TraceEqualsEigenvalueSum) {
    const int n = GetParam();
    const auto a = random_symmetric(n, 23u + static_cast<unsigned long>(n));
    const auto res = ak::eigen_sym(a, n);
    double trace = 0, sum = 0;
    for (int i = 0; i < n; ++i) {
        trace += a[static_cast<std::size_t>(i) * n + i];
        sum += res.values[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(sum, trace, 1e-9 * (1.0 + std::abs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenRandom, ::testing::Values(2, 3, 5, 10, 24));

TEST(EigenSym, RejectsAsymmetric) {
    const std::vector<double> a{1, 2, 3, 4};
    EXPECT_THROW((void)ak::eigen_sym(a, 2), armstice::util::Error);
}

TEST(Cholesky, FactorReproducesMatrix) {
    const int n = 12;
    const auto a = random_spd_dense(n, 5);
    const auto l = ak::cholesky(a, n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            double s = 0;
            for (int k = 0; k < n; ++k) {
                s += l[static_cast<std::size_t>(i) * n + k] *
                     l[static_cast<std::size_t>(j) * n + k];
            }
            EXPECT_NEAR(s, a[static_cast<std::size_t>(i) * n + j], 1e-9);
        }
    }
}

TEST(Cholesky, SolveRecoversSolution) {
    const int n = 20;
    const auto a = random_spd_dense(n, 9);
    armstice::util::Rng rng(4);
    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true) v = rng.uniform(-3, 3);
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            b[static_cast<std::size_t>(i)] +=
                a[static_cast<std::size_t>(i) * n + j] * x_true[static_cast<std::size_t>(j)];
        }
    }
    const auto l = ak::cholesky(a, n);
    const auto x = ak::cholesky_solve(l, n, b);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)],
                    1e-8);
    }
}

TEST(Cholesky, RejectsIndefinite) {
    const std::vector<double> a{1, 2, 2, 1};  // eigenvalues 3, -1
    EXPECT_THROW((void)ak::cholesky(a, 2), armstice::util::Error);
}

TEST(Cholesky, CountsCubicScaling) {
    const auto a8 = random_spd_dense(8, 1);
    const auto a16 = random_spd_dense(16, 2);
    ak::OpCounts c8, c16;
    (void)ak::cholesky(a8, 8, &c8);
    (void)ak::cholesky(a16, 16, &c16);
    EXPECT_NEAR(c16.flops / c8.flops, 8.0, 0.01);
}
