// Tests of the SELL-C-sigma format.

#include "kern/sparse/ell.hpp"
#include "kern/sparse/sell.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace ak = armstice::kern;

class SellVsCsr : public ::testing::TestWithParam<std::tuple<long, int, int>> {};

TEST_P(SellVsCsr, SpmvMatchesCsr) {
    const auto [n, chunk, sigma] = GetParam();
    const auto csr = ak::random_spd(n, 5, 77u + static_cast<unsigned long>(n));
    const ak::SellMatrix sell(csr, chunk, sigma);
    armstice::util::Rng rng(6);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y_csr(x.size()), y_sell(x.size());
    csr.spmv(x, y_csr);
    sell.spmv(x, y_sell);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y_sell[i], y_csr[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SellVsCsr,
    ::testing::Values(std::tuple{10L, 4, 4}, std::tuple{100L, 8, 64},
                      std::tuple{333L, 8, 8}, std::tuple{257L, 16, 32},
                      std::tuple{64L, 8, 64}));

TEST(Sell, LessPaddingThanEll) {
    // The HPCG operator has short boundary rows; sigma-window sorting keeps
    // them out of the interior chunks.
    const auto csr = ak::poisson27(8, 8, 8);
    const ak::EllMatrix ell(csr);
    const ak::SellMatrix sell(csr, 8, 64);
    EXPECT_LT(sell.padding_ratio(), ell.padding_ratio());
    EXPECT_GE(sell.padding_ratio(), 1.0);
    EXPECT_EQ(sell.nnz(), csr.nnz());
}

TEST(Sell, LargerSigmaNeverIncreasesPadding) {
    const auto csr = ak::poisson27(10, 10, 10);
    double prev = 1e9;
    for (int sigma : {8, 32, 128, 1024}) {
        const ak::SellMatrix sell(csr, 8, sigma);
        EXPECT_LE(sell.padding_ratio(), prev + 1e-12) << sigma;
        prev = sell.padding_ratio();
    }
}

TEST(Sell, ChunkOfOneIsPaddingFree) {
    // C = 1 degenerates to CSR-like storage: no padding at all.
    const auto csr = ak::random_spd(50, 3, 5);
    const ak::SellMatrix sell(csr, 1, 1);
    EXPECT_DOUBLE_EQ(sell.padding_ratio(), 1.0);
}

TEST(Sell, InvalidShapeRejected) {
    const auto csr = ak::poisson7(4, 4, 4);
    EXPECT_THROW(ak::SellMatrix(csr, 8, 4), armstice::util::Error);   // sigma < C
    EXPECT_THROW(ak::SellMatrix(csr, 8, 12), armstice::util::Error);  // not multiple
    EXPECT_THROW(ak::SellMatrix(csr, 0, 8), armstice::util::Error);
}

TEST(Sell, CountsChargePaddedTraffic) {
    const auto csr = ak::poisson27(6, 6, 6);
    const ak::SellMatrix sell(csr, 8, 48);
    std::vector<double> x(static_cast<std::size_t>(csr.rows()), 1.0), y(x.size());
    ak::OpCounts c;
    sell.spmv(x, y, &c);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * static_cast<double>(csr.nnz()));
    EXPECT_GT(c.bytes_read, 12.0 * static_cast<double>(csr.nnz()));
}

TEST(Sell, RowsNotMultipleOfChunkHandled) {
    const auto csr = ak::random_spd(13, 2, 3);  // 13 rows, chunk 8
    const ak::SellMatrix sell(csr, 8, 8);
    std::vector<double> x(13, 1.0), y_sell(13), y_csr(13);
    sell.spmv(x, y_sell);
    csr.spmv(x, y_csr);
    for (int i = 0; i < 13; ++i) {
        EXPECT_NEAR(y_sell[static_cast<std::size_t>(i)],
                    y_csr[static_cast<std::size_t>(i)], 1e-12);
    }
}
