// Thread-count invariance: every kernel routed through kern::par must
// produce bit-identical outputs, residual histories and OpCounts at
// --jobs 1 and --jobs 8 (DESIGN.md §9). These tests compare with EXPECT_EQ
// on doubles — any reassociation across the partition shows up as a
// failure, not a tolerance miss.

#include "kern/dense/blas.hpp"
#include "kern/fft/fft.hpp"
#include "kern/nek/spectral.hpp"
#include "kern/par.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/ell.hpp"
#include "kern/sparse/multigrid.hpp"
#include "kern/sparse/sell.hpp"
#include "kern/stencil/taylor_green.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace ak = armstice::kern;
namespace par = armstice::kern::par;

namespace {

class ThreadInvariance : public ::testing::Test {
protected:
    void TearDown() override { par::set_jobs(0); }

    /// Run `fn` at jobs=1 and jobs=8 and return both results.
    template <typename Fn>
    static auto serial_vs_threaded(Fn&& fn) {
        par::set_jobs(1);
        auto serial = fn();
        par::set_jobs(8);
        auto threaded = fn();
        return std::pair{std::move(serial), std::move(threaded)};
    }

    static std::vector<double> random_vector(std::size_t n, unsigned long seed) {
        armstice::util::Rng rng(seed);
        std::vector<double> v(n);
        for (auto& x : v) x = rng.uniform(-1.0, 1.0);
        return v;
    }
};

void expect_bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "element " << i << " differs across thread counts";
    }
}

} // namespace

TEST_F(ThreadInvariance, CsrEllSellSpmv) {
    const auto csr = ak::poisson27(12, 12, 12);
    const ak::EllMatrix ell(csr);
    const ak::SellMatrix sell(csr, 8, 64);
    const auto x = random_vector(static_cast<std::size_t>(csr.rows()), 11);

    for (const auto* label : {"csr", "ell", "sell"}) {
        auto [serial, threaded] = serial_vs_threaded([&] {
            std::vector<double> y(x.size());
            if (label[0] == 'c') {
                csr.spmv(x, y);
            } else if (label[0] == 'e') {
                ell.spmv(x, y);
            } else {
                sell.spmv(x, y);
            }
            return y;
        });
        SCOPED_TRACE(label);
        expect_bit_identical(serial, threaded);
    }
}

TEST_F(ThreadInvariance, DotNormAxpyWaxpby) {
    const std::size_t n = 3 * static_cast<std::size_t>(par::kReduceBlock) + 997;
    const auto x = random_vector(n, 21);
    const auto y = random_vector(n, 22);

    auto [d1, d8] = serial_vs_threaded([&] { return ak::dot(x, y); });
    EXPECT_EQ(d1, d8);
    auto [n1, n8] = serial_vs_threaded([&] { return ak::norm2(x); });
    EXPECT_EQ(n1, n8);

    auto [a1, a8] = serial_vs_threaded([&] {
        std::vector<double> out = y;
        ak::axpy(0.37, x, out);
        return out;
    });
    expect_bit_identical(a1, a8);

    auto [w1, w8] = serial_vs_threaded([&] {
        std::vector<double> out(n);
        ak::waxpby(1.2, x, -0.8, y, out);
        return out;
    });
    expect_bit_identical(w1, w8);
}

TEST_F(ThreadInvariance, GemmAndZgemm) {
    const int m = 150, k = 130, n = 170;  // off-block-size shapes
    const auto a = random_vector(static_cast<std::size_t>(m) * k, 31);
    const auto b = random_vector(static_cast<std::size_t>(k) * n, 32);
    auto [c1, c8] = serial_vs_threaded([&] {
        std::vector<double> c(static_cast<std::size_t>(m) * n);
        ak::gemm(a, b, c, m, k, n);
        return c;
    });
    expect_bit_identical(c1, c8);

    const std::size_t zn = 40;
    std::vector<ak::cplx> za(zn * zn), zb(zn * zn);
    armstice::util::Rng rng(33);
    for (auto& v : za) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    for (auto& v : zb) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto [z1, z8] = serial_vs_threaded([&] {
        std::vector<ak::cplx> zc(zn * zn);
        ak::zgemm(za, zb, zc, static_cast<int>(zn), static_cast<int>(zn),
                  static_cast<int>(zn));
        return zc;
    });
    ASSERT_EQ(z1.size(), z8.size());
    for (std::size_t i = 0; i < z1.size(); ++i) {
        ASSERT_EQ(z1[i].real(), z8[i].real());
        ASSERT_EQ(z1[i].imag(), z8[i].imag());
    }
}

TEST_F(ThreadInvariance, CgSolveResidualHistoryAndSolution) {
    const auto a = ak::poisson27(10, 10, 10);
    const auto b = random_vector(static_cast<std::size_t>(a.rows()), 41);
    auto solve = [&] {
        std::vector<double> x(b.size(), 0.0);
        auto res = ak::cg_solve(a, b, x, {/*max_iters=*/50, /*rel_tol=*/1e-10},
                                ak::jacobi_preconditioner(a));
        return std::pair{std::move(x), std::move(res)};
    };
    auto [serial, threaded] = serial_vs_threaded(solve);
    expect_bit_identical(serial.first, threaded.first);
    EXPECT_EQ(serial.second.iterations, threaded.second.iterations);
    expect_bit_identical(serial.second.residuals, threaded.second.residuals);
    EXPECT_EQ(serial.second.counts.flops, threaded.second.counts.flops);
    EXPECT_EQ(serial.second.counts.bytes_read, threaded.second.counts.bytes_read);
    EXPECT_EQ(serial.second.counts.bytes_written, threaded.second.counts.bytes_written);
}

TEST_F(ThreadInvariance, MultigridVcycle) {
    const ak::Multigrid mg(8, 8, 8, 2);
    const auto r = random_vector(static_cast<std::size_t>(mg.rows(0)), 51);
    auto [x1, x8] = serial_vs_threaded([&] {
        std::vector<double> x(r.size());
        mg.vcycle(r, x);
        return x;
    });
    expect_bit_identical(x1, x8);
}

TEST_F(ThreadInvariance, TaylorGreenStepsAndDiagnostics) {
    auto run = [] {
        ak::TaylorGreen tgv(16, 0.1, 1e-3);
        const double dt = tgv.stable_dt();
        for (int s = 0; s < 3; ++s) tgv.step(dt);
        return std::tuple{tgv.state(), tgv.total_mass(), tgv.kinetic_energy(),
                          tgv.max_speed()};
    };
    auto [serial, threaded] = serial_vs_threaded(run);
    expect_bit_identical(std::get<0>(serial), std::get<0>(threaded));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(threaded));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(threaded));
    EXPECT_EQ(std::get<3>(serial), std::get<3>(threaded));
}

TEST_F(ThreadInvariance, NekSpectralAxAndCg) {
    const ak::NekMesh mesh(32, 10);
    const auto u = random_vector(static_cast<std::size_t>(mesh.local_dofs()), 61);
    auto [w1, w8] = serial_vs_threaded([&] {
        std::vector<double> w(u.size());
        mesh.ax(u, w);
        return w;
    });
    expect_bit_identical(w1, w8);

    auto [r1, r8] = serial_vs_threaded([&] {
        std::vector<double> sol(u.size());
        return std::pair{mesh.cg(u, sol, 25).residuals, std::move(sol)};
    });
    expect_bit_identical(r1.first, r8.first);
    expect_bit_identical(r1.second, r8.second);
}

TEST_F(ThreadInvariance, Fft3dRoundTrip) {
    const int n = 16;
    const std::size_t total = static_cast<std::size_t>(n) * n * n;
    armstice::util::Rng rng(71);
    std::vector<ak::cplx> init(total);
    for (auto& v : init) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto [f1, f8] = serial_vs_threaded([&] {
        auto data = init;
        ak::fft3d(data, n);
        ak::ifft3d(data, n);
        return data;
    });
    ASSERT_EQ(f1.size(), f8.size());
    for (std::size_t i = 0; i < f1.size(); ++i) {
        ASSERT_EQ(f1[i].real(), f8[i].real());
        ASSERT_EQ(f1[i].imag(), f8[i].imag());
    }
}

// OpCounts are added analytically once per kernel call, so under threads
// they must still equal the exact analytic totals the skeletons rely on.
TEST_F(ThreadInvariance, OpCountsUnderThreadsMatchAnalytic) {
    par::set_jobs(8);

    const auto a = ak::poisson27(8, 8, 8);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    ak::OpCounts c;
    a.spmv(x, y, &c);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * static_cast<double>(a.nnz()));

    ak::OpCounts cd;
    ak::dot(x, x, &cd);
    EXPECT_DOUBLE_EQ(cd.flops, 2.0 * static_cast<double>(x.size()));
    EXPECT_DOUBLE_EQ(cd.bytes_read, 16.0 * static_cast<double>(x.size()));

    ak::TaylorGreen tgv(16);
    ak::OpCounts ct;
    tgv.step(tgv.stable_dt(), &ct);
    EXPECT_DOUBLE_EQ(ct.flops, ak::TaylorGreen::step_flops_per_point() * 16.0 * 16.0 * 16.0);

    const ak::NekMesh mesh(8, 8);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0), w(u.size());
    ak::OpCounts cn;
    mesh.ax(u, w, &cn);
    EXPECT_DOUBLE_EQ(cn.flops, ak::NekMesh::ax_flops(8, 8));

    std::vector<ak::cplx> data(static_cast<std::size_t>(8) * 8 * 8, {1.0, 0.0});
    ak::OpCounts cf;
    ak::fft3d(data, 8, &cf);
    EXPECT_DOUBLE_EQ(cf.flops, ak::fft3d_flops(8));
}

// Satellite: CsrMatrix must reject shapes its int column/nnz storage cannot
// represent instead of silently truncating the cast.
TEST(CsrHardening, RejectsColumnsBeyondIntRange) {
    const long too_wide = static_cast<long>(std::numeric_limits<int>::max()) + 1L;
    EXPECT_THROW(ak::CsrMatrix(1, too_wide, {{0, 0, 1.0}}), armstice::util::Error);
    // A just-in-range shape with in-range entries is fine.
    const long max_ok = static_cast<long>(std::numeric_limits<int>::max());
    EXPECT_NO_THROW(ak::CsrMatrix(1, max_ok, {{0, max_ok - 1, 1.0}}));
}
