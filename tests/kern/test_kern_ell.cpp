// Tests of the ELLPACK sparse format.

#include "kern/sparse/ell.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace ak = armstice::kern;

class EllVsCsr : public ::testing::TestWithParam<long> {};

TEST_P(EllVsCsr, SpmvMatchesCsr) {
    const long n = GetParam();
    const auto csr = ak::random_spd(n, 4, 31u + static_cast<unsigned long>(n));
    const ak::EllMatrix ell(csr);
    armstice::util::Rng rng(2);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y_csr(x.size()), y_ell(x.size());
    csr.spmv(x, y_csr);
    ell.spmv(x, y_ell);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y_ell[i], y_csr[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EllVsCsr, ::testing::Values(5L, 32L, 100L, 333L));

TEST(Ell, WidthIsMaxRowLength) {
    // Row 0 has 3 entries, row 1 has 1.
    const ak::CsrMatrix csr(2, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {0, 2, 3.0}, {1, 1, 4.0}});
    const ak::EllMatrix ell(csr);
    EXPECT_EQ(ell.width(), 3);
    EXPECT_EQ(ell.nnz(), 4);
    EXPECT_EQ(ell.padded_nnz(), 6);
    EXPECT_DOUBLE_EQ(ell.padding_ratio(), 1.5);
}

TEST(Ell, UniformStencilHasNoPaddingInterior) {
    // 27-point operator on a periodic-free grid: corner rows are shortest,
    // interior rows longest (27), so padding ratio is modest but > 1.
    const auto csr = ak::poisson27(6, 6, 6);
    const ak::EllMatrix ell(csr);
    EXPECT_EQ(ell.width(), 27);
    EXPECT_GT(ell.padding_ratio(), 1.0);
    EXPECT_LT(ell.padding_ratio(), 1.5);
}

TEST(Ell, CountsChargePadding) {
    const auto csr = ak::poisson27(4, 4, 4);
    const ak::EllMatrix ell(csr);
    std::vector<double> x(static_cast<std::size_t>(csr.rows()), 1.0), y(x.size());
    ak::OpCounts c_ell, c_csr;
    ell.spmv(x, y, &c_ell);
    csr.spmv(x, y, &c_csr);
    EXPECT_DOUBLE_EQ(c_ell.flops, c_csr.flops);        // same useful work
    EXPECT_GT(c_ell.bytes_read, c_csr.bytes_read);     // padding traffic
}

TEST(Ell, EmptyRowsHandled) {
    const ak::CsrMatrix csr(3, 3, {{0, 0, 2.0}});  // rows 1,2 empty
    const ak::EllMatrix ell(csr);
    std::vector<double> x{1, 1, 1}, y(3);
    ell.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
}
