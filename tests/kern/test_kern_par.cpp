// Tests of kern::par — the static partitioner and the deterministic
// reduction scheme under every threaded kernel (DESIGN.md §9).

#include "kern/par.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

namespace par = armstice::kern::par;

namespace {

/// Restore the ambient jobs setting when a test returns or throws.
class JobsGuard {
public:
    JobsGuard() = default;
    ~JobsGuard() { par::set_jobs(0); }
};

} // namespace

TEST(ParSplit, CoversRangeExactlyOnce) {
    for (long n : {0L, 1L, 7L, 100L, 4096L, 4097L, 1000000L}) {
        for (int parts : {1, 2, 3, 8, 64}) {
            const auto ranges = par::split(n, parts);
            long expect_begin = 0;
            for (const auto& r : ranges) {
                EXPECT_EQ(r.begin, expect_begin);
                EXPECT_GT(r.size(), 0);
                expect_begin = r.end;
            }
            EXPECT_EQ(expect_begin, n) << "n=" << n << " parts=" << parts;
            EXPECT_LE(static_cast<int>(ranges.size()), parts);
        }
    }
}

TEST(ParSplit, BalancedWithinOneUnit) {
    const auto ranges = par::split(103, 8);
    ASSERT_EQ(ranges.size(), 8u);
    long mn = ranges[0].size(), mx = ranges[0].size();
    for (const auto& r : ranges) {
        mn = std::min(mn, r.size());
        mx = std::max(mx, r.size());
    }
    EXPECT_LE(mx - mn, 1);
    // Earlier parts take the remainder, matching tile_cells' row rule.
    EXPECT_EQ(ranges[0].size(), 13);
    EXPECT_EQ(ranges[7].size(), 12);
}

TEST(ParSplit, AlignedBoundaries) {
    const long chunk = 8;
    const auto ranges = par::split(100, 4, chunk);
    ASSERT_FALSE(ranges.empty());
    for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
        EXPECT_EQ(ranges[i].end % chunk, 0) << "interior boundary must be chunk-aligned";
    }
    EXPECT_EQ(ranges.back().end, 100);
}

TEST(ParSplit, MorePartsThanUnitsShrinks) {
    const auto ranges = par::split(3, 8);
    EXPECT_EQ(ranges.size(), 3u);
    const auto aligned = par::split(20, 8, 8);  // 3 align units of 8
    EXPECT_EQ(aligned.size(), 3u);
}

TEST(ParSplit, RejectsBadShapes) {
    EXPECT_THROW(par::split(-1, 4), armstice::util::Error);
    EXPECT_THROW(par::split(10, 4, 0), armstice::util::Error);
}

TEST(ParJobs, SetAndResetRoundTrip) {
    JobsGuard guard;
    par::set_jobs(5);
    EXPECT_EQ(par::jobs(), 5);
    par::set_jobs(0);  // back to environment/serial default
    EXPECT_GE(par::jobs(), 1);
}

TEST(ParallelFor, VisitsEveryIndexOnceAtAnyJobs) {
    JobsGuard guard;
    const long n = 10000;
    for (int jobs : {1, 2, 8}) {
        par::set_jobs(jobs);
        std::vector<std::atomic<int>> visits(static_cast<std::size_t>(n));
        par::parallel_for(
            n,
            [&](par::Range r) {
                for (long i = r.begin; i < r.end; ++i) {
                    visits[static_cast<std::size_t>(i)].fetch_add(1);
                }
            },
            /*align=*/1, /*grain=*/1);
        for (long i = 0; i < n; ++i) {
            ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
                << "index " << i << " at jobs=" << jobs;
        }
    }
}

TEST(ParallelFor, NestedCallRunsInline) {
    JobsGuard guard;
    par::set_jobs(4);
    std::atomic<long> total{0};
    // The inner parallel_for would deadlock the 4-thread pool if it queued
    // tasks and waited; the nested-region guard makes it run inline instead.
    par::parallel_for(
        8,
        [&](par::Range outer) {
            for (long i = outer.begin; i < outer.end; ++i) {
                par::parallel_for(
                    100,
                    [&](par::Range inner) { total.fetch_add(inner.size()); },
                    /*align=*/1, /*grain=*/1);
            }
        },
        /*align=*/1, /*grain=*/1);
    EXPECT_EQ(total.load(), 800);
}

TEST(ParallelFor, PropagatesBodyException) {
    JobsGuard guard;
    par::set_jobs(4);
    EXPECT_THROW(
        par::parallel_for(
            1000,
            [&](par::Range r) {
                if (r.begin == 0) throw armstice::util::Error("boom");
            },
            /*align=*/1, /*grain=*/1),
        armstice::util::Error);
    // The pool is still usable after a failed batch.
    std::atomic<long> count{0};
    par::parallel_for(
        1000, [&](par::Range r) { count.fetch_add(r.size()); }, 1, 1);
    EXPECT_EQ(count.load(), 1000);
}

TEST(PairwiseSum, MatchesSerialOnSmallAndIsExactOnIntegers) {
    std::vector<double> v(1000);
    std::iota(v.begin(), v.end(), 1.0);
    EXPECT_EQ(par::pairwise_sum(v.data(), v.size()), 500500.0);
    EXPECT_EQ(par::pairwise_sum(v.data(), 0), 0.0);
    EXPECT_EQ(par::pairwise_sum(v.data(), 1), 1.0);
}

TEST(ReduceSum, BitIdenticalAcrossJobs) {
    JobsGuard guard;
    armstice::util::Rng rng(42);
    const long n = 3 * par::kReduceBlock + 1234;  // exercises a partial tail block
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    auto block = [&](par::Range r) {
        double s = 0.0;
        for (long i = r.begin; i < r.end; ++i) s += v[static_cast<std::size_t>(i)];
        return s;
    };
    par::set_jobs(1);
    const double serial = par::reduce_sum(n, block);
    for (int jobs : {2, 3, 8}) {
        par::set_jobs(jobs);
        const double threaded = par::reduce_sum(n, block);
        EXPECT_EQ(serial, threaded) << "jobs=" << jobs;  // bit-identical, not NEAR
    }
}

TEST(ReduceSum, SingleBlockEqualsPlainSerialSum) {
    // For n <= kReduceBlock the blocked scheme degenerates to one in-order
    // block, so callers like dot() keep their historical exact values.
    armstice::util::Rng rng(7);
    std::vector<double> v(100);
    for (auto& x : v) x = rng.uniform(-10.0, 10.0);
    double serial = 0.0;
    for (double x : v) serial += x;
    const double blocked = par::reduce_sum(static_cast<long>(v.size()), [&](par::Range r) {
        double s = 0.0;
        for (long i = r.begin; i < r.end; ++i) s += v[static_cast<std::size_t>(i)];
        return s;
    });
    EXPECT_EQ(serial, blocked);
}

TEST(ReduceMax, BitIdenticalAcrossJobsAndMatchesScan) {
    JobsGuard guard;
    armstice::util::Rng rng(9);
    const long n = 2 * par::kReduceBlock + 17;
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.uniform(-5.0, 5.0);
    const double scan = *std::max_element(v.begin(), v.end());
    auto block = [&](par::Range r) {
        double m = v[static_cast<std::size_t>(r.begin)];
        for (long i = r.begin; i < r.end; ++i) {
            m = std::max(m, v[static_cast<std::size_t>(i)]);
        }
        return m;
    };
    for (int jobs : {1, 8}) {
        par::set_jobs(jobs);
        EXPECT_EQ(par::reduce_max(n, block), scan);
    }
}
