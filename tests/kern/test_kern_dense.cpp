// Deep tests of the blas-lite kernels.

#include "kern/dense/blas.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ak = armstice::kern;

TEST(Blas1, AxpyAndWaxpby) {
    std::vector<double> x{1, 2, 3}, y{10, 20, 30}, w(3);
    ak::axpy(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[2], 36.0);
    ak::waxpby(1.0, x, -1.0, y, w);
    EXPECT_DOUBLE_EQ(w[0], 1.0 - 12.0);
}

TEST(Blas1, DotAndNorm) {
    std::vector<double> x{3, 4};
    EXPECT_DOUBLE_EQ(ak::dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(ak::norm2(x), 5.0);
}

TEST(Blas1, SizeMismatchThrows) {
    std::vector<double> a(3), b(4);
    EXPECT_THROW(ak::axpy(1.0, a, b), armstice::util::Error);
    EXPECT_THROW((void)ak::dot(a, b), armstice::util::Error);
}

TEST(Blas1, CountsExact) {
    std::vector<double> x(100, 1.0), y(100, 2.0);
    ak::OpCounts c;
    (void)ak::dot(x, y, &c);
    EXPECT_DOUBLE_EQ(c.flops, 200.0);
    EXPECT_DOUBLE_EQ(c.bytes_read, 1600.0);
    ak::axpy(1.5, x, y, &c);
    EXPECT_DOUBLE_EQ(c.flops, 400.0);
    EXPECT_DOUBLE_EQ(c.bytes_written, 800.0);
}

TEST(Gemv, MatchesManual) {
    // A = [[1,2],[3,4],[5,6]], x = [1,-1].
    std::vector<double> a{1, 2, 3, 4, 5, 6}, x{1, -1}, y(3);
    ak::gemv(a, 3, 2, x, y);
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], -1.0);
}

struct GemmShape {
    int m, k, n;
};

class GemmVsNaive : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmVsNaive, BlockedMatchesNaive) {
    const auto [m, k, n] = GetParam();
    armstice::util::Rng rng(static_cast<unsigned long>(m * 1000 + k * 10 + n));
    std::vector<double> a(static_cast<std::size_t>(m) * k);
    std::vector<double> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    std::vector<double> c_blocked(static_cast<std::size_t>(m) * n);
    std::vector<double> c_naive(c_blocked.size());
    ak::gemm(a, b, c_blocked, m, k, n);
    ak::gemm_naive(a, b, c_naive, m, k, n);
    for (std::size_t i = 0; i < c_naive.size(); ++i) {
        EXPECT_NEAR(c_blocked[i], c_naive[i], 1e-10 * k);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsNaive,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7}, GemmShape{16, 16, 16},
                      GemmShape{64, 64, 64}, GemmShape{65, 63, 2},
                      GemmShape{128, 17, 70}, GemmShape{1, 200, 1}));

TEST(Gemm, BetaAccumulates) {
    std::vector<double> a{1, 0, 0, 1};  // identity
    std::vector<double> b{5, 6, 7, 8};
    std::vector<double> c{1, 1, 1, 1};
    ak::gemm(a, b, c, 2, 2, 2, /*beta=*/1.0);
    EXPECT_DOUBLE_EQ(c[0], 6.0);
    EXPECT_DOUBLE_EQ(c[3], 9.0);
}

TEST(Gemm, ShapeMismatchThrows) {
    std::vector<double> a(6), b(6), c(5);
    EXPECT_THROW(ak::gemm(a, b, c, 2, 3, 2), armstice::util::Error);
}

TEST(Gemm, FlopCountFormula) {
    EXPECT_DOUBLE_EQ(ak::gemm_flops(10, 20, 30), 12000.0);
    std::vector<double> a(200), b(600), c(300);
    ak::OpCounts cnt;
    ak::gemm(a, b, c, 10, 20, 30, 0.0, &cnt);
    EXPECT_DOUBLE_EQ(cnt.flops, 12000.0);
}

TEST(Zgemm, MatchesManualSmall) {
    using ak::cplx;
    // (1+i) * (2-i) = 3 + i.
    std::vector<cplx> a{cplx(1, 1)}, b{cplx(2, -1)}, c(1);
    ak::zgemm(a, b, c, 1, 1, 1);
    EXPECT_DOUBLE_EQ(c[0].real(), 3.0);
    EXPECT_DOUBLE_EQ(c[0].imag(), 1.0);
}

TEST(Zgemm, AgainstRealGemmOnRealInputs) {
    const int m = 7, k = 9, n = 5;
    armstice::util::Rng rng(4);
    std::vector<double> ar(static_cast<std::size_t>(m) * k),
        br(static_cast<std::size_t>(k) * n), cr(static_cast<std::size_t>(m) * n);
    std::vector<ak::cplx> az(ar.size()), bz(br.size()), cz(cr.size());
    for (std::size_t i = 0; i < ar.size(); ++i) {
        ar[i] = rng.uniform(-1, 1);
        az[i] = ar[i];
    }
    for (std::size_t i = 0; i < br.size(); ++i) {
        br[i] = rng.uniform(-1, 1);
        bz[i] = br[i];
    }
    ak::gemm_naive(ar, br, cr, m, k, n);
    ak::zgemm(az, bz, cz, m, k, n);
    for (std::size_t i = 0; i < cr.size(); ++i) {
        EXPECT_NEAR(cz[i].real(), cr[i], 1e-10);
        EXPECT_NEAR(cz[i].imag(), 0.0, 1e-12);
    }
}

TEST(Zgemm, FlopConvention) {
    EXPECT_DOUBLE_EQ(ak::zgemm_flops(2, 3, 4), 8.0 * 24.0);
}
