// Smoke tests exercising every real kernel end-to-end; the deep per-module
// suites live in the other test files.

#include "kern/dense/blas.hpp"
#include "kern/fft/fft.hpp"
#include "kern/mesh/blocks.hpp"
#include "kern/nek/spectral.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/multigrid.hpp"
#include "kern/stencil/taylor_green.hpp"

#include <gtest/gtest.h>

namespace ak = armstice::kern;

TEST(KernSmoke, CgSolvesPoisson) {
    const auto a = ak::poisson27(8, 8, 8);
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const auto res = ak::cg_solve(a, b, x, {.max_iters = 500, .rel_tol = 1e-10});
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.final_residual, 1e-10);
}

TEST(KernSmoke, MultigridPreconditionsCg) {
    const int n = 16;
    const ak::Multigrid mg(n, n, n, 3);
    const auto& a = mg.matrix(0);
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> x_plain(b.size(), 0.0), x_mg(b.size(), 0.0);

    const auto plain = ak::cg_solve(a, b, x_plain, {.max_iters = 300, .rel_tol = 1e-9});
    const auto pre = ak::cg_solve(
        a, b, x_mg, {.max_iters = 300, .rel_tol = 1e-9},
        [&](std::span<const double> r, std::span<double> z, ak::OpCounts* c) {
            mg.vcycle(r, z, c);
        });
    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(pre.converged);
    EXPECT_LT(pre.iterations, plain.iterations);  // MG must actually help
}

TEST(KernSmoke, FftMatchesNaiveDft) {
    std::vector<ak::cplx> data(16);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = ak::cplx(std::sin(0.3 * static_cast<double>(i)),
                           std::cos(0.7 * static_cast<double>(i)));
    }
    const auto expect = ak::dft_naive(data);
    ak::fft(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), expect[i].real(), 1e-9);
        EXPECT_NEAR(data[i].imag(), expect[i].imag(), 1e-9);
    }
}

TEST(KernSmoke, TaylorGreenConservesMass) {
    ak::TaylorGreen tg(16);
    const double m0 = tg.total_mass();
    for (int s = 0; s < 5; ++s) tg.step(tg.stable_dt());
    EXPECT_NEAR(tg.total_mass(), m0, 1e-9 * std::abs(m0));
}

TEST(KernSmoke, NekCgReducesResidual) {
    const ak::NekMesh mesh(4, 8);
    std::vector<double> f(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    mesh.mask(f);
    std::vector<double> u(f.size(), 0.0);
    // Unpreconditioned CG on the spectral Laplacian is slow (condition
    // number ~ N^3 per element); Nekbone likewise runs a fixed, generous
    // iteration count rather than to tolerance.
    const auto res = mesh.cg(f, u, 200);
    ASSERT_FALSE(res.residuals.empty());
    EXPECT_LT(res.final_residual, 1e-6);
}

TEST(KernSmoke, BlockDistributionMatchesPaperExamples) {
    // A64FX 16 nodes: 768 ranks, 800 blocks -> 32 ranks carry 2 blocks.
    const auto a64 = ak::BlockDistribution::round_robin(800, 768);
    EXPECT_EQ(a64.max_blocks_per_rank, 2);
    EXPECT_EQ(a64.active_ranks, 768);
    // Fulhame 16 nodes: 1024 ranks, 800 blocks -> 224 idle ranks.
    const auto ful = ak::BlockDistribution::round_robin(800, 1024);
    EXPECT_EQ(ful.max_blocks_per_rank, 1);
    EXPECT_EQ(ful.active_ranks, 800);
}
