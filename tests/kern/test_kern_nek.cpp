// Deep tests of the spectral-element kernels: GLL quadrature, the
// differentiation matrix, the ax operator and Nekbone-style CG.

#include "kern/nek/spectral.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ak = armstice::kern;

class GllOrder : public ::testing::TestWithParam<int> {};

TEST_P(GllOrder, PointsSymmetricWithEndpoints) {
    std::vector<double> x, w;
    ak::gll_points(GetParam(), x, w);
    const int n = GetParam();
    EXPECT_DOUBLE_EQ(x.front(), -1.0);
    EXPECT_DOUBLE_EQ(x.back(), 1.0);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                    -x[static_cast<std::size_t>(n - 1 - i)], 1e-12);
        EXPECT_GT(w[static_cast<std::size_t>(i)], 0.0);
    }
    // Strictly increasing.
    for (int i = 0; i + 1 < n; ++i) {
        EXPECT_LT(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i) + 1]);
    }
}

TEST_P(GllOrder, WeightsSumToTwo) {
    std::vector<double> x, w;
    ak::gll_points(GetParam(), x, w);
    double sum = 0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllOrder, QuadratureExactForPolynomials) {
    // GLL with n points integrates polynomials up to degree 2n-3 exactly.
    const int n = GetParam();
    std::vector<double> x, w;
    ak::gll_points(n, x, w);
    for (int deg = 0; deg <= 2 * n - 3; ++deg) {
        double q = 0;
        for (int i = 0; i < n; ++i) {
            q += w[static_cast<std::size_t>(i)] *
                 std::pow(x[static_cast<std::size_t>(i)], deg);
        }
        const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
        EXPECT_NEAR(q, exact, 1e-10) << "degree " << deg;
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, GllOrder, ::testing::Values(2, 3, 4, 6, 8, 12, 16));

class DerivMatrix : public ::testing::TestWithParam<int> {};

TEST_P(DerivMatrix, DifferentiatesPolynomialsExactly) {
    const int n = GetParam();
    std::vector<double> x, w;
    ak::gll_points(n, x, w);
    const auto d = ak::gll_deriv_matrix(n);
    // D applied to x^k must give k x^(k-1) for k < n.
    for (int k = 0; k < n; ++k) {
        for (int i = 0; i < n; ++i) {
            double du = 0;
            for (int j = 0; j < n; ++j) {
                du += d[static_cast<std::size_t>(i) * n + j] *
                      std::pow(x[static_cast<std::size_t>(j)], k);
            }
            const double exact =
                k == 0 ? 0.0 : k * std::pow(x[static_cast<std::size_t>(i)], k - 1);
            EXPECT_NEAR(du, exact, 1e-8) << "k=" << k << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, DerivMatrix, ::testing::Values(2, 4, 8, 16));

TEST(DerivMatrix, RowSumsVanish) {
    // Derivative of a constant is zero: every row of D sums to 0.
    const int n = 10;
    const auto d = ak::gll_deriv_matrix(n);
    for (int i = 0; i < n; ++i) {
        double s = 0;
        for (int j = 0; j < n; ++j) s += d[static_cast<std::size_t>(i) * n + j];
        EXPECT_NEAR(s, 0.0, 1e-10);
    }
}

namespace {

/// Random vector that is continuous across shared faces and masked.
std::vector<double> continuous_masked(const ak::NekMesh& mesh, unsigned long seed) {
    armstice::util::Rng rng(seed);
    std::vector<double> v(static_cast<std::size_t>(mesh.local_dofs()));
    for (auto& x : v) x = rng.uniform(-1, 1);
    // Make shared faces equal by sum-then-halve.
    mesh.dssum(v);
    const int n = mesh.nx1();
    const std::size_t epts = static_cast<std::size_t>(n) * n * n;
    for (int e = 0; e + 1 < mesh.nelems(); ++e) {
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < n; ++j) {
                v[static_cast<std::size_t>(e) * epts +
                  (static_cast<std::size_t>(k) * n + j) * n + static_cast<std::size_t>(n - 1)] *= 0.5;
                v[(static_cast<std::size_t>(e) + 1) * epts +
                  (static_cast<std::size_t>(k) * n + j) * n] *= 0.5;
            }
        }
    }
    mesh.mask(v);
    return v;
}

double wdot(const ak::NekMesh& mesh, const std::vector<double>& a,
            const std::vector<double>& b) {
    const int n = mesh.nx1();
    const std::size_t epts = static_cast<std::size_t>(n) * n * n;
    std::vector<double> vm(a.size(), 1.0);
    for (int e = 0; e + 1 < mesh.nelems(); ++e) {
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < n; ++j) {
                vm[static_cast<std::size_t>(e) * epts +
                   (static_cast<std::size_t>(k) * n + j) * n + static_cast<std::size_t>(n - 1)] = 0.5;
                vm[(static_cast<std::size_t>(e) + 1) * epts +
                   (static_cast<std::size_t>(k) * n + j) * n] = 0.5;
            }
        }
    }
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i] * vm[i];
    return s;
}

} // namespace

class AxOperator : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AxOperator, SymmetricOnContinuousSpace) {
    const auto [elems, nx1] = GetParam();
    const ak::NekMesh mesh(elems, nx1);
    const auto u = continuous_masked(mesh, 1);
    const auto v = continuous_masked(mesh, 2);
    std::vector<double> au(u.size()), av(v.size());
    mesh.ax(u, au);
    mesh.ax(v, av);
    const double vau = wdot(mesh, v, au);
    const double uav = wdot(mesh, u, av);
    EXPECT_NEAR(vau, uav, 1e-9 * std::max(1.0, std::abs(vau)));
}

TEST_P(AxOperator, PositiveDefiniteOnMaskedSpace) {
    const auto [elems, nx1] = GetParam();
    const ak::NekMesh mesh(elems, nx1);
    const auto u = continuous_masked(mesh, 3);
    std::vector<double> au(u.size());
    mesh.ax(u, au);
    EXPECT_GT(wdot(mesh, u, au), 0.0);
}

TEST_P(AxOperator, FlopFormulaMatchesInstrumented) {
    const auto [elems, nx1] = GetParam();
    const ak::NekMesh mesh(elems, nx1);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    std::vector<double> w(u.size());
    ak::OpCounts c;
    mesh.ax(u, w, &c);
    EXPECT_DOUBLE_EQ(c.flops, ak::NekMesh::ax_flops(elems, nx1));
}

INSTANTIATE_TEST_SUITE_P(Shapes, AxOperator,
                         ::testing::Values(std::tuple{1, 4}, std::tuple{2, 6},
                                           std::tuple{4, 8}, std::tuple{3, 12}));

TEST(AxOperator, KillsConstantsUpToMask) {
    // The Poisson operator annihilates constants; only the Dirichlet mask
    // face contributes.
    const ak::NekMesh mesh(2, 6);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    mesh.mask(u);  // constant away from the masked face
    std::vector<double> w(u.size());
    mesh.ax(u, w);
    // Interior of element 1 (away from the mask) must be ~0.
    const int n = mesh.nx1();
    const std::size_t epts = static_cast<std::size_t>(n) * n * n;
    const std::size_t probe = epts + (static_cast<std::size_t>(n / 2) * n + n / 2) * n +
                              static_cast<std::size_t>(n / 2);
    EXPECT_NEAR(w[probe], 0.0, 1e-9);
}

TEST(Dssum, SumsSharedFaces) {
    const ak::NekMesh mesh(2, 4);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    mesh.dssum(u);
    const int n = 4;
    const std::size_t epts = 64;
    // Shared face entries became 2, interiors stayed 1.
    EXPECT_DOUBLE_EQ(u[static_cast<std::size_t>(n - 1)], 2.0);  // e0 face point
    EXPECT_DOUBLE_EQ(u[epts], 2.0);                              // e1 face point
    EXPECT_DOUBLE_EQ(u[1], 1.0);
}

TEST(NekCg, FixedIterationResidualDrops) {
    const ak::NekMesh mesh(3, 6);
    std::vector<double> f(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    mesh.mask(f);
    std::vector<double> u(f.size(), 0.0);
    const auto res = mesh.cg(f, u, 150);
    EXPECT_EQ(res.iterations, 150);
    EXPECT_LT(res.final_residual, 1e-4);
}

TEST(NekCg, SolutionSatisfiesEquation) {
    const ak::NekMesh mesh(2, 6);
    const auto u_true = continuous_masked(mesh, 8);
    std::vector<double> f(u_true.size());
    mesh.ax(u_true, f);
    std::vector<double> u(u_true.size(), 0.0);
    (void)mesh.cg(f, u, 400);
    std::vector<double> au(u.size());
    mesh.ax(u, au);
    double err = 0;
    for (std::size_t i = 0; i < f.size(); ++i) err = std::max(err, std::abs(au[i] - f[i]));
    EXPECT_LT(err, 1e-5);
}

TEST(NekMesh, BadConfigThrows) {
    EXPECT_THROW(ak::NekMesh(0, 8), armstice::util::Error);
    EXPECT_THROW(ak::NekMesh(4, 1), armstice::util::Error);
}
