// Deep tests of the compressible Taylor-Green solver (the OpenSBLI
// reference numerics).

#include "kern/stencil/taylor_green.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace ak = armstice::kern;

class TgvGrids : public ::testing::TestWithParam<int> {};

TEST_P(TgvGrids, MassExactlyConserved) {
    // Central differences in flux form telescope over a periodic domain, so
    // total mass is conserved to round-off.
    ak::TaylorGreen tg(GetParam());
    const double m0 = tg.total_mass();
    for (int s = 0; s < 10; ++s) tg.step(tg.stable_dt());
    EXPECT_NEAR(tg.total_mass(), m0, 1e-10 * std::abs(m0));
}

TEST_P(TgvGrids, InitialMassMatchesDomain) {
    ak::TaylorGreen tg(GetParam());
    // rho0 = 1 over (2*pi)^3.
    EXPECT_NEAR(tg.total_mass(), std::pow(2.0 * std::numbers::pi, 3), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grids, TgvGrids, ::testing::Values(8, 12, 16, 24));

TEST(TaylorGreen, InitialKineticEnergyMatchesAnalytic) {
    // KE = rho V0^2/2 * integral(sin^2 x cos^2 y cos^2 z + cos^2 x sin^2 y
    // cos^2 z) = rho V0^2 (2*pi)^3 / 8.
    ak::TaylorGreen tg(32, 0.1);
    const double expect = 0.01 * std::pow(2.0 * std::numbers::pi, 3) / 8.0;
    EXPECT_NEAR(tg.kinetic_energy(), expect, 0.01 * expect);
}

TEST(TaylorGreen, MaxSpeedIsMach) {
    ak::TaylorGreen tg(16, 0.1);
    EXPECT_NEAR(tg.max_speed(), 0.1, 0.01);
}

TEST(TaylorGreen, EnergyStaysBoundedInviscid) {
    // Inviscid Euler with central differences: KE should stay near its
    // initial value over a short horizon (no shocks at Mach 0.1).
    ak::TaylorGreen tg(16);
    const double ke0 = tg.kinetic_energy();
    for (int s = 0; s < 20; ++s) tg.step(tg.stable_dt());
    EXPECT_NEAR(tg.kinetic_energy(), ke0, 0.05 * ke0);
}

TEST(TaylorGreen, WMomentumStaysZeroBySymmetry) {
    // The classic TGV initialisation has w = 0 everywhere and the z-symmetry
    // keeps vertical momentum tiny at early times.
    ak::TaylorGreen tg(16);
    for (int s = 0; s < 5; ++s) tg.step(tg.stable_dt());
    EXPECT_LT(tg.max_speed(), 0.2);  // no blow-up
}

TEST(TaylorGreen, StableDtPositiveAndCflLike) {
    ak::TaylorGreen tg(32);
    const double dt = tg.stable_dt();
    EXPECT_GT(dt, 0.0);
    EXPECT_LT(dt, 2.0 * std::numbers::pi / 32.0);  // below h/c
}

TEST(TaylorGreen, RejectsBadConfig) {
    EXPECT_THROW(ak::TaylorGreen(4), armstice::util::Error);        // too small
    EXPECT_THROW(ak::TaylorGreen(16, 0.9), armstice::util::Error);  // transonic
    ak::TaylorGreen tg(8);
    EXPECT_THROW(tg.step(0.0), armstice::util::Error);
}

TEST(TaylorGreen, CountsMatchAnalyticPerPoint) {
    const int n = 8;
    ak::TaylorGreen tg(n);
    ak::OpCounts c;
    tg.step(tg.stable_dt(), &c);
    const double pts = static_cast<double>(n) * n * n;
    EXPECT_DOUBLE_EQ(c.flops, ak::TaylorGreen::step_flops_per_point() * pts);
}

TEST(TaylorGreen, DeterministicEvolution) {
    ak::TaylorGreen a(12), b(12);
    for (int s = 0; s < 3; ++s) {
        a.step(0.01);
        b.step(0.01);
    }
    EXPECT_DOUBLE_EQ(a.kinetic_energy(), b.kinetic_energy());
    EXPECT_DOUBLE_EQ(a.total_mass(), b.total_mass());
}

TEST(TaylorGreen, ViscousDecayMatchesAnalyticRate) {
    // For the single-mode TGV field, nabla^2(u) = -3u, so with momentum
    // diffusion nu the kinetic energy decays as exp(-6 nu t) before
    // nonlinear transfer kicks in. Integrate to t=0.5 and compare.
    const double nu = 0.02;
    ak::TaylorGreen tg(16, 0.1, nu);
    const double ke0 = tg.kinetic_energy();
    const double t_end = 0.5;
    double t = 0;
    while (t < t_end) {
        const double dt = std::min(tg.stable_dt(), t_end - t);
        tg.step(dt);
        t += dt;
    }
    const double expect = ke0 * std::exp(-6.0 * nu * t_end);
    EXPECT_NEAR(tg.kinetic_energy(), expect, 0.02 * ke0);
}

TEST(TaylorGreen, ViscosityStillConservesMass) {
    ak::TaylorGreen tg(12, 0.1, 0.05);
    const double m0 = tg.total_mass();
    for (int s = 0; s < 10; ++s) tg.step(tg.stable_dt());
    EXPECT_NEAR(tg.total_mass(), m0, 1e-10 * std::abs(m0));
}

TEST(TaylorGreen, ViscousDtRespectsDiffusionLimit) {
    ak::TaylorGreen inviscid(16, 0.1, 0.0);
    ak::TaylorGreen viscous(16, 0.1, 1.0);  // huge nu
    EXPECT_LT(viscous.stable_dt(), inviscid.stable_dt());
    EXPECT_THROW(ak::TaylorGreen(16, 0.1, -0.1), armstice::util::Error);
}

TEST(TaylorGreen, FinerGridLowersDispersionError) {
    // KE drift over the same physical time shrinks as the grid refines.
    auto drift = [](int n) {
        ak::TaylorGreen tg(n);
        const double ke0 = tg.kinetic_energy();
        const double t_end = 0.2;
        double t = 0;
        while (t < t_end) {
            const double dt = std::min(tg.stable_dt(), t_end - t);
            tg.step(dt);
            t += dt;
        }
        return std::abs(tg.kinetic_energy() - ke0) / ke0;
    };
    EXPECT_LE(drift(16), drift(8) + 1e-12);
}
