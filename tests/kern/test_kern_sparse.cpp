// Deep tests of the sparse kernels: CSR construction, SpMV, SymGS, CG,
// multigrid — correctness and exact-count properties.

#include "kern/dense/blas.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/multigrid.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ak = armstice::kern;

TEST(Csr, TripletsSortedAndDuplicatesSummed) {
    ak::CsrMatrix a(2, 2, {{1, 0, 3.0}, {0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 4.0}});
    EXPECT_EQ(a.nnz(), 3);
    std::vector<double> x{1.0, 1.0}, y(2);
    a.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 3.0);  // 1+2 summed on the diagonal
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csr, OutOfRangeTripletThrows) {
    EXPECT_THROW(ak::CsrMatrix(2, 2, {{2, 0, 1.0}}), armstice::util::Error);
    EXPECT_THROW(ak::CsrMatrix(2, 2, {{0, -1, 1.0}}), armstice::util::Error);
}

TEST(Csr, SpmvSizeChecks) {
    const auto a = ak::poisson7(4, 4, 4);
    std::vector<double> bad(3), y(static_cast<std::size_t>(a.rows()));
    EXPECT_THROW(a.spmv(bad, y), armstice::util::Error);
}

class SpmvVsDense : public ::testing::TestWithParam<long> {};

TEST_P(SpmvVsDense, MatchesDenseReference) {
    const long n = GetParam();
    const auto a = ak::random_spd(n, 3, 17u + static_cast<unsigned long>(n));
    armstice::util::Rng rng(5);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(-1, 1);

    // Densify and multiply with gemv.
    std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
    for (long i = 0; i < n; ++i) {
        for (long k = a.row_ptr()[static_cast<std::size_t>(i)];
             k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
            dense[static_cast<std::size_t>(i) * n +
                  a.col_idx()[static_cast<std::size_t>(k)]] =
                a.vals()[static_cast<std::size_t>(k)];
        }
    }
    std::vector<double> y_sparse(static_cast<std::size_t>(n)),
        y_dense(static_cast<std::size_t>(n));
    a.spmv(x, y_sparse);
    ak::gemv(dense, static_cast<int>(n), static_cast<int>(n), x, y_dense);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpmvVsDense, ::testing::Values(5L, 17L, 64L, 200L));

TEST(Csr, SpmvCountsAreExact) {
    const auto a = ak::poisson27(6, 6, 6);
    ak::OpCounts c;
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    a.spmv(x, y, &c);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * static_cast<double>(a.nnz()));
    EXPECT_DOUBLE_EQ(c.bytes_written, 8.0 * static_cast<double>(a.rows()));
}

TEST(Csr, DiagonalExtraction) {
    const auto a = ak::poisson27(4, 4, 4);
    const auto d = a.diagonal();
    for (double v : d) EXPECT_DOUBLE_EQ(v, 26.0);
}

class SymGsSmoother : public ::testing::TestWithParam<int> {};

TEST_P(SymGsSmoother, ReducesResidualMonotonically) {
    const int n = GetParam();
    const auto a = ak::poisson7(n, n, n);
    const std::size_t rows = static_cast<std::size_t>(a.rows());
    std::vector<double> b(rows, 1.0), x(rows, 0.0), ax(rows);

    auto residual = [&] {
        a.spmv(x, ax);
        double sum = 0;
        for (std::size_t i = 0; i < rows; ++i) sum += (b[i] - ax[i]) * (b[i] - ax[i]);
        return std::sqrt(sum);
    };

    double prev = residual();
    for (int sweep = 0; sweep < 4; ++sweep) {
        a.symgs(b, x);
        const double cur = residual();
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Grids, SymGsSmoother, ::testing::Values(4, 6, 8, 10));

TEST(SymGs, ZeroDiagonalThrows) {
    ak::CsrMatrix a(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
    std::vector<double> r(2, 1.0), x(2, 0.0);
    EXPECT_THROW(a.symgs(r, x), armstice::util::Error);
}

TEST(Poisson, NnzMatchesClosedForm) {
    // nnz of the 27-point operator = prod(3n-2) — the formula the HPCG
    // skeleton uses; cross-checked against the real matrix builder.
    for (int n : {2, 3, 4, 5, 8}) {
        const auto a = ak::poisson27(n, n, n);
        const double expect = std::pow(3.0 * n - 2.0, 3);
        EXPECT_DOUBLE_EQ(static_cast<double>(a.nnz()), expect) << n;
    }
}

TEST(Poisson, Poisson7SevenPointInterior) {
    const auto a = ak::poisson7(5, 5, 5);
    // interior row has 7 entries: nnz = sum over rows of (1 + faces present).
    EXPECT_EQ(a.rows(), 125);
    // 1D: 3n-2 = 13 per line; 7-pt nnz = 3*n^3 - 2*... use direct count:
    // each dim contributes (n-1) interior links *2 directed + n diagonal.
    const long links = 3L * 5 * 5 * (5 - 1) * 2;
    EXPECT_EQ(a.nnz(), 125 + links);
}

class CgConvergence : public ::testing::TestWithParam<long> {};

TEST_P(CgConvergence, SolvesRandomSpdToTolerance) {
    const long n = GetParam();
    const auto a = ak::random_spd(n, 4, 99);
    // Manufactured solution.
    armstice::util::Rng rng(3);
    std::vector<double> x_true(static_cast<std::size_t>(n));
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    std::vector<double> b(static_cast<std::size_t>(n));
    a.spmv(x_true, b);

    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const auto res = ak::cg_solve(a, b, x, {.max_iters = 2000, .rel_tol = 1e-10});
    EXPECT_TRUE(res.converged);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgConvergence, ::testing::Values(10L, 50L, 300L));

TEST(Cg, IdentityConvergesInOneIteration) {
    std::vector<ak::Triplet> trip;
    for (long i = 0; i < 20; ++i) trip.push_back({i, i, 1.0});
    const ak::CsrMatrix eye(20, 20, std::move(trip));
    std::vector<double> b(20, 3.0), x(20, 0.0);
    const auto res = ak::cg_solve(eye, b, x);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 1);
    EXPECT_DOUBLE_EQ(x[7], 3.0);
}

TEST(Cg, ZeroRhsReturnsZero) {
    const auto a = ak::poisson7(3, 3, 3);
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0), x(b.size(), 5.0);
    const auto res = ak::cg_solve(a, b, x);
    EXPECT_TRUE(res.converged);
    for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, ResidualHistoryDecreasesOverall) {
    const auto a = ak::poisson27(8, 8, 8);
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0), x(b.size(), 0.0);
    const auto res = ak::cg_solve(a, b, x, {.max_iters = 100, .rel_tol = 1e-12});
    ASSERT_GE(res.residuals.size(), 2u);
    EXPECT_LT(res.residuals.back(), res.residuals.front());
}

TEST(Cg, NonSquareRejected) {
    ak::CsrMatrix a(2, 3, {{0, 0, 1.0}});
    std::vector<double> b(2), x(2);
    EXPECT_THROW((void)ak::cg_solve(a, b, x), armstice::util::Error);
}

TEST(Cg, IterationCountFormulasTrackInstrumented) {
    // Counts per iteration from the instrumented solver must be close to the
    // analytic cg_iter_flops/bytes used by the minikab skeleton.
    const auto a = ak::random_spd(500, 5, 12);
    std::vector<double> b(500, 1.0), x(500, 0.0);
    const auto res = ak::cg_solve(a, b, x, {.max_iters = 50, .rel_tol = 0.0});
    ASSERT_EQ(res.iterations, 50);
    const double per_iter_flops = res.counts.flops / 50.0;
    EXPECT_NEAR(per_iter_flops, ak::cg_iter_flops(a), 0.1 * ak::cg_iter_flops(a));
    const double per_iter_bytes = res.counts.bytes() / 50.0;
    EXPECT_NEAR(per_iter_bytes, ak::cg_iter_bytes(a), 0.25 * ak::cg_iter_bytes(a));
}

TEST(Multigrid, LevelSizesHalve) {
    const ak::Multigrid mg(16, 16, 16, 3);
    EXPECT_EQ(mg.levels(), 3);
    EXPECT_EQ(mg.rows(0), 16L * 16 * 16);
    EXPECT_EQ(mg.rows(1), 8L * 8 * 8);
    EXPECT_EQ(mg.rows(2), 4L * 4 * 4);
}

TEST(Multigrid, IndivisibleGridRejected) {
    EXPECT_THROW(ak::Multigrid(10, 10, 10, 3), armstice::util::Error);  // 5/2
    EXPECT_THROW(ak::Multigrid(2, 2, 2, 3), armstice::util::Error);     // too deep
}

class VcyclePreconditioner : public ::testing::TestWithParam<int> {};

TEST_P(VcyclePreconditioner, ContractsTheError) {
    const int n = GetParam();
    const ak::Multigrid mg(n, n, n, 2);
    const auto& a = mg.matrix(0);
    const std::size_t rows = static_cast<std::size_t>(a.rows());
    std::vector<double> b(rows, 1.0), x(rows, 0.0), ax(rows), r(rows);

    // One V-cycle applied to the residual equation must shrink ||b - Ax||.
    auto rnorm = [&] {
        a.spmv(x, ax);
        double s = 0;
        for (std::size_t i = 0; i < rows; ++i) s += (b[i] - ax[i]) * (b[i] - ax[i]);
        return std::sqrt(s);
    };
    // HPCG-style injection transfer operators give modest but monotone
    // contraction; three cycles must shrink the residual substantially.
    const double r0 = rnorm();
    double prev = r0;
    std::vector<double> z(rows);
    for (int cycle = 0; cycle < 3; ++cycle) {
        a.spmv(x, ax);
        for (std::size_t i = 0; i < rows; ++i) r[i] = b[i] - ax[i];
        mg.vcycle(r, z);
        for (std::size_t i = 0; i < rows; ++i) x[i] += z[i];
        const double cur = rnorm();
        EXPECT_LT(cur, prev);
        prev = cur;
    }
    EXPECT_LT(prev, 0.4 * r0);
}

INSTANTIATE_TEST_SUITE_P(Grids, VcyclePreconditioner, ::testing::Values(8, 12, 16));

TEST(RandomSpd, IsSymmetric) {
    const auto a = ak::random_spd(50, 4, 7);
    // Verify A = A^T via random vectors: x'Ay == y'Ax.
    armstice::util::Rng rng(1);
    std::vector<double> x(50), y(50), ax(50), ay(50);
    for (auto& v : x) v = rng.uniform(-1, 1);
    for (auto& v : y) v = rng.uniform(-1, 1);
    a.spmv(x, ax);
    a.spmv(y, ay);
    EXPECT_NEAR(ak::dot(y, ax), ak::dot(x, ay), 1e-9);
}
