// Deep tests of the FFT kernels: correctness against the naive DFT,
// classical transform identities, 3D behaviour, and count conventions.

#include "kern/fft/fft.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace ak = armstice::kern;
using ak::cplx;

namespace {

std::vector<cplx> random_signal(std::size_t n, unsigned long seed) {
    armstice::util::Rng rng(seed);
    std::vector<cplx> v(n);
    for (auto& x : v) x = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    return v;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace

class FftVsDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDft, MatchesNaiveDft) {
    auto data = random_signal(GetParam(), GetParam());
    const auto expect = ak::dft_naive(data);
    ak::fft(data);
    EXPECT_LT(max_err(data, expect), 1e-9 * static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftVsDft,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u));

TEST(Fft, RoundTripIdentity) {
    auto data = random_signal(64, 7);
    const auto orig = data;
    ak::fft(data);
    ak::ifft(data);
    EXPECT_LT(max_err(data, orig), 1e-12);
}

TEST(Fft, NonPowerOfTwoThrows) {
    std::vector<cplx> data(12);
    EXPECT_THROW(ak::fft(data), armstice::util::Error);
}

TEST(Fft, Linearity) {
    auto a = random_signal(32, 1);
    auto b = random_signal(32, 2);
    std::vector<cplx> sum(32);
    for (std::size_t i = 0; i < 32; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
    ak::fft(a);
    ak::fft(b);
    ak::fft(sum);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-10);
    }
}

TEST(Fft, ParsevalEnergyConservation) {
    auto data = random_signal(128, 3);
    double time_energy = 0;
    for (const auto& x : data) time_energy += std::norm(x);
    ak::fft(data);
    double freq_energy = 0;
    for (const auto& x : data) freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-9 * time_energy);
}

TEST(Fft, DeltaTransformsToConstant) {
    std::vector<cplx> data(16, cplx(0, 0));
    data[0] = cplx(1, 0);
    ak::fft(data);
    for (const auto& x : data) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneLandsInOneBin) {
    const std::size_t n = 64;
    const int k = 5;
    std::vector<cplx> data(n);
    for (std::size_t j = 0; j < n; ++j) {
        const double ang = 2.0 * std::numbers::pi * k * static_cast<double>(j) / n;
        data[j] = cplx(std::cos(ang), std::sin(ang));
    }
    ak::fft(data);
    for (std::size_t j = 0; j < n; ++j) {
        if (j == static_cast<std::size_t>(k)) {
            EXPECT_NEAR(data[j].real(), static_cast<double>(n), 1e-9);
        } else {
            EXPECT_LT(std::abs(data[j]), 1e-9);
        }
    }
}

TEST(Fft3d, RoundTripIdentity) {
    const int n = 8;
    auto data = random_signal(static_cast<std::size_t>(n) * n * n, 9);
    const auto orig = data;
    ak::fft3d(data, n);
    ak::ifft3d(data, n);
    EXPECT_LT(max_err(data, orig), 1e-11);
}

TEST(Fft3d, PlaneWaveSingleCoefficient) {
    const int n = 8;
    const std::size_t nn = static_cast<std::size_t>(n) * n * n;
    std::vector<cplx> data(nn);
    const int kx = 2, ky = 1, kz = 3;
    for (int z = 0; z < n; ++z) {
        for (int y = 0; y < n; ++y) {
            for (int x = 0; x < n; ++x) {
                const double ang = 2.0 * std::numbers::pi *
                                   (kx * x + ky * y + kz * z) / static_cast<double>(n);
                data[(static_cast<std::size_t>(z) * n + y) * n +
                     static_cast<std::size_t>(x)] = cplx(std::cos(ang), std::sin(ang));
            }
        }
    }
    ak::fft3d(data, n);
    const std::size_t peak = (static_cast<std::size_t>(kz) * n + ky) * n +
                             static_cast<std::size_t>(kx);
    EXPECT_NEAR(data[peak].real(), static_cast<double>(nn), 1e-7);
    double rest = 0;
    for (std::size_t i = 0; i < nn; ++i) {
        if (i != peak) rest = std::max(rest, std::abs(data[i]));
    }
    EXPECT_LT(rest, 1e-7);
}

TEST(Fft3d, SizeMismatchThrows) {
    std::vector<cplx> data(100);
    EXPECT_THROW(ak::fft3d(data, 8), armstice::util::Error);
    std::vector<cplx> data12(12 * 12 * 12);
    EXPECT_THROW(ak::fft3d(data12, 12), armstice::util::Error);  // not pow2
}

TEST(FftCounts, FiveNLogN) {
    EXPECT_DOUBLE_EQ(ak::fft_flops(8), 5.0 * 8 * 3);
    EXPECT_DOUBLE_EQ(ak::fft_flops(1), 0.0);
    EXPECT_DOUBLE_EQ(ak::fft3d_flops(8), 3.0 * 64 * ak::fft_flops(8));
}

TEST(FftCounts, InstrumentedMatchesConvention) {
    std::vector<cplx> data = random_signal(64, 11);
    ak::OpCounts c;
    ak::fft(data, &c);
    EXPECT_DOUBLE_EQ(c.flops, ak::fft_flops(64));
    ak::OpCounts c3;
    std::vector<cplx> cube = random_signal(8 * 8 * 8, 12);
    ak::fft3d(cube, 8, &c3);
    EXPECT_DOUBLE_EQ(c3.flops, ak::fft3d_flops(8));
}
