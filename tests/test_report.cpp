// Tests of the report renderers used by the bench binaries.

#include "core/report.hpp"

#include <gtest/gtest.h>

namespace ac = armstice::core;

TEST(Report, SystemCatalogListsAllSystemsAndToolchains) {
    const std::string s = ac::render_system_catalog();
    for (const char* name : {"A64FX", "ARCHER", "Cirrus", "EPCC NGIO", "Fulhame"}) {
        EXPECT_NE(s.find(name), std::string::npos) << name;
    }
    EXPECT_NE(s.find("Fujitsu TofuD"), std::string::npos);
    EXPECT_NE(s.find("Fujitsu 1.2.24"), std::string::npos);
    EXPECT_NE(s.find("Intel MKL"), std::string::npos);
}

TEST(Report, Table3RendersPaperAndModelColumns) {
    std::vector<ac::Table3Row> rows{{"A64FX", false, 38.26, 38.20, 1.1}};
    const std::string s = ac::render_table3(rows);
    EXPECT_NE(s.find("38.26"), std::string::npos);
    EXPECT_NE(s.find("38.20"), std::string::npos);
    EXPECT_NE(s.find("unoptimised"), std::string::npos);
}

TEST(Report, Fig1MarksInfeasibleConfigs) {
    std::vector<ac::Fig1Series> series(1);
    series[0].label = "plain MPI";
    series[0].points.push_back({48, 48, 1, true, 100.0, 10.0});
    series[0].points.push_back({96, 96, 1, false, 0.0, 0.0});
    const std::string s = ac::render_fig1(series);
    EXPECT_NE(s.find("OOM"), std::string::npos);
    EXPECT_NE(s.find("plain MPI"), std::string::npos);
}

TEST(Report, Fig4MarksCapacityFailures) {
    std::vector<ac::Fig4Series> series(1);
    series[0].system = "A64FX";
    series[0].ppn = 48;
    series[0].points.push_back({1, false, 0.0});
    series[0].points.push_back({2, true, 12.0});
    const std::string s = ac::render_fig4(series);
    EXPECT_NE(s.find("does not fit"), std::string::npos);
}

TEST(Report, Table8IsStaticPaperData) {
    const std::string s = ac::render_table8();
    EXPECT_NE(s.find("64"), std::string::npos);  // Fulhame ppn
    EXPECT_NE(s.find("COSA"), std::string::npos);
}

TEST(Report, Table10RendersPairs) {
    std::vector<ac::Table10Row> rows(1);
    rows[0].system = "A64FX";
    rows[0].paper = {3.44, 1.89, 1.04, 0.69};
    rows[0].model = {3.40, 1.90, 1.05, 0.70};
    rows[0].feasible = {true, true, true, true};
    const std::string s = ac::render_table10(rows);
    EXPECT_NE(s.find("3.44 | 3.40"), std::string::npos);
}
