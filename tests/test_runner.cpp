// Tests of the parallel sweep subsystem: util::ThreadPool and
// core::SweepRunner (deterministic ordering, memo cache, stats, jobs knob)
// plus the bench-facing --jobs extraction in util::jobs_from_args.

#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <any>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace ac = armstice::core;
namespace au = armstice::util;

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask) {
    au::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrain) {
    au::ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8);  // nothing still running after wait_idle
}

TEST(ThreadPool, DestructorFinishesQueuedWork) {
    std::atomic<int> count{0};
    {
        au::ThreadPool pool(1);
        for (int i = 0; i < 20; ++i) {
            pool.submit([&count] { count.fetch_add(1); });
        }
    }  // destructor joins after draining
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, RunsTasksOnMultipleThreads) {
    au::ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::atomic<int> rendezvous{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&] {
            rendezvous.fetch_add(1);
            // Hold until all four tasks run at once — forces distinct threads.
            while (rendezvous.load() < 4) std::this_thread::yield();
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait_idle();
    EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPool, ClampsSizeToAtLeastOne) {
    au::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait_idle();
    EXPECT_TRUE(ran.load());
}

// ---- SweepPoint / SweepRunner ----------------------------------------------

namespace {

ac::SweepPoint pt(const std::string& config, int nodes = 1) {
    return ac::sweep_point("test-app", "A64FX", nodes, 4 * nodes, 12, config);
}

} // namespace

TEST(SweepRunner, KeyEncodesEveryField) {
    const auto a = ac::sweep_point("app", "sys", 2, 8, 12, "cfg");
    EXPECT_NE(a.key(), ac::sweep_point("app2", "sys", 2, 8, 12, "cfg").key());
    EXPECT_NE(a.key(), ac::sweep_point("app", "sys2", 2, 8, 12, "cfg").key());
    EXPECT_NE(a.key(), ac::sweep_point("app", "sys", 3, 8, 12, "cfg").key());
    EXPECT_NE(a.key(), ac::sweep_point("app", "sys", 2, 9, 12, "cfg").key());
    EXPECT_NE(a.key(), ac::sweep_point("app", "sys", 2, 8, 13, "cfg").key());
    EXPECT_NE(a.key(), ac::sweep_point("app", "sys", 2, 8, 12, "cfg2").key());
    EXPECT_EQ(a.key(), ac::sweep_point("app", "sys", 2, 8, 12, "cfg").key());
}

TEST(SweepRunner, ResultsLandByIndexRegardlessOfCompletionOrder) {
    ac::reset_sweep_cache();
    std::vector<ac::SweepPoint> points;
    points.reserve(16);
    for (int i = 0; i < 16; ++i) points.push_back(pt("p" + std::to_string(i)));
    const ac::SweepRunner runner(8);
    const auto out = runner.run<int>(
        points, [](const ac::SweepPoint& p, std::size_t i) {
            // Early indices sleep longest so completion order inverts index
            // order; results must still land by index.
            std::this_thread::sleep_for(std::chrono::milliseconds(16 - static_cast<long>(i)));
            return static_cast<int>(i) * 10 + static_cast<int>(p.config.size());
        });
    ASSERT_EQ(out.size(), 16u);
    for (int i = 0; i < 16; ++i) {
        const int cfg_len = static_cast<int>(points[static_cast<std::size_t>(i)].config.size());
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10 + cfg_len);
    }
}

TEST(SweepRunner, ParallelMatchesSerial) {
    ac::reset_sweep_cache();
    std::vector<ac::SweepPoint> points;
    for (int n : {1, 2, 4, 8}) points.push_back(pt("scale", n));
    const auto eval = [](const ac::SweepPoint& p, std::size_t) {
        return 1.0 / p.nodes;
    };
    const auto serial = ac::SweepRunner(1).run<double>(points, eval);
    ac::reset_sweep_cache();
    const auto parallel = ac::SweepRunner(8).run<double>(points, eval);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
    }
}

TEST(SweepRunner, DuplicatePointsEvaluateOnce) {
    ac::reset_sweep_cache();
    std::atomic<int> evals{0};
    std::vector<ac::SweepPoint> points(10, pt("dup"));
    const auto out = ac::SweepRunner(4).run<int>(
        points, [&evals](const ac::SweepPoint&, std::size_t) {
            return evals.fetch_add(1) + 42;
        });
    EXPECT_EQ(evals.load(), 1);
    for (const int v : out) EXPECT_EQ(v, 42);
    const auto stats = ac::sweep_stats();
    EXPECT_EQ(stats.points, 10);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits, 9);
}

TEST(SweepRunner, CacheSpansRunnerInstances) {
    ac::reset_sweep_cache();
    std::atomic<int> evals{0};
    const std::vector<ac::SweepPoint> points{pt("memo-a"), pt("memo-b")};
    const auto eval = [&evals](const ac::SweepPoint&, std::size_t i) {
        evals.fetch_add(1);
        return static_cast<long>(i) + 7;
    };
    const auto first = ac::SweepRunner(2).run<long>(points, eval);
    const auto second = ac::SweepRunner(1).run<long>(points, eval);  // all hits
    EXPECT_EQ(evals.load(), 2);
    EXPECT_EQ(first, second);
    const auto stats = ac::sweep_stats();
    EXPECT_EQ(stats.points, 4);
    EXPECT_EQ(stats.hits, 2);
    EXPECT_EQ(stats.misses, 2);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(SweepRunner, CacheIsResultTypeAware) {
    // Identical points with different result types must not alias.
    ac::reset_sweep_cache();
    const std::vector<ac::SweepPoint> points{pt("typed")};
    const auto ints = ac::SweepRunner(1).run<int>(
        points, [](const ac::SweepPoint&, std::size_t) { return 3; });
    const auto doubles = ac::SweepRunner(1).run<double>(
        points, [](const ac::SweepPoint&, std::size_t) { return 2.5; });
    EXPECT_EQ(ints[0], 3);
    EXPECT_DOUBLE_EQ(doubles[0], 2.5);
    EXPECT_EQ(ac::sweep_stats().misses, 2);  // second run was not a hit
}

TEST(SweepRunner, ExceptionsPropagateAfterBatch) {
    ac::reset_sweep_cache();
    const std::vector<ac::SweepPoint> points{pt("ok"), pt("boom"), pt("ok2")};
    EXPECT_THROW(
        (void)ac::SweepRunner(2).run<int>(
            points, [](const ac::SweepPoint& p, std::size_t) {
                if (p.config == "boom") throw au::Error("sweep point failed");
                return 1;
            }),
        au::Error);
    // A failed point must not poison the cache with a phantom result.
    std::atomic<int> evals{0};
    const auto out = ac::SweepRunner(1).run<int>(
        {pt("boom")}, [&evals](const ac::SweepPoint&, std::size_t) {
            evals.fetch_add(1);
            return 5;
        });
    EXPECT_EQ(evals.load(), 1);
    EXPECT_EQ(out[0], 5);
}

TEST(SweepRunner, EmptyBatchIsANoop) {
    ac::reset_sweep_cache();
    const auto out = ac::SweepRunner(4).run<int>(
        {}, [](const ac::SweepPoint&, std::size_t) { return 0; });
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(ac::sweep_stats().points, 0);
}

TEST(SweepRunner, JobsDefaultAndOverride) {
    EXPECT_GE(ac::SweepRunner().jobs(), 1);
    EXPECT_EQ(ac::SweepRunner(6).jobs(), 6);
    EXPECT_EQ(ac::SweepRunner(-3).jobs(), 1);  // clamped
    const int saved = ac::default_jobs();
    ac::set_default_jobs(5);
    EXPECT_EQ(ac::default_jobs(), 5);
    EXPECT_EQ(ac::SweepRunner().jobs(), 5);
    ac::set_default_jobs(saved);
}

TEST(SweepRunner, FooterReportsPoolPointsAndHitRate) {
    ac::reset_sweep_cache();
    std::vector<ac::SweepPoint> points(4, pt("footer"));
    (void)ac::SweepRunner(2).run<int>(
        points, [](const ac::SweepPoint&, std::size_t) { return 0; });
    const std::string footer = ac::sweep_footer();
    EXPECT_NE(footer.find("[sweep]"), std::string::npos);
    EXPECT_NE(footer.find("pool=2"), std::string::npos);
    EXPECT_NE(footer.find("4 points"), std::string::npos);
    EXPECT_NE(footer.find("hit rate"), std::string::npos);
}

// ---- RunHooks (per-point streaming + cancellation) --------------------------

namespace {

/// Thread-safe recorder for on_result deliveries.
struct Deliveries {
    std::mutex mu;
    std::vector<std::pair<std::size_t, int>> seen;  // (index, value)

    ac::RunHooks hooks() {
        ac::RunHooks h;
        h.on_result = [this](std::size_t i, const std::any& v) {
            std::lock_guard<std::mutex> lock(mu);
            seen.emplace_back(i, std::any_cast<int>(v));
        };
        return h;
    }
};

} // namespace

TEST(RunHooks, OnResultFiresExactlyOncePerPointWithTheFinalValue) {
    ac::reset_sweep_cache();
    std::vector<ac::SweepPoint> points;
    for (int i = 0; i < 6; ++i) points.push_back(pt("hook" + std::to_string(i)));
    Deliveries rec;
    const auto out = ac::SweepRunner(4).run<int>(
        points,
        [](const ac::SweepPoint&, std::size_t i) { return static_cast<int>(i) * 3; },
        rec.hooks());
    ASSERT_EQ(rec.seen.size(), points.size());
    std::set<std::size_t> indices;
    for (const auto& [i, v] : rec.seen) {
        indices.insert(i);
        EXPECT_EQ(v, out[i]) << "hook value diverges from returned result";
    }
    EXPECT_EQ(indices.size(), points.size()) << "some index delivered twice/never";
}

TEST(RunHooks, MemoHitsAndInBatchDuplicatesAreDelivered) {
    ac::reset_sweep_cache();
    // First run primes the memo with "a"; the hooked run then mixes a memo
    // hit, a fresh point, and an in-batch duplicate of the fresh point.
    (void)ac::SweepRunner(1).run<int>(
        {pt("a")}, [](const ac::SweepPoint&, std::size_t) { return 10; });
    Deliveries rec;
    const auto out = ac::SweepRunner(1).run<int>(
        {pt("a"), pt("b"), pt("b")},
        [](const ac::SweepPoint&, std::size_t) { return 20; }, rec.hooks());
    EXPECT_EQ(out, (std::vector<int>{10, 20, 20}));
    ASSERT_EQ(rec.seen.size(), 3u);
    // The memo hit is delivered first — before anything evaluates.
    EXPECT_EQ(rec.seen[0], (std::pair<std::size_t, int>{0, 10}));
    std::set<std::size_t> indices;
    for (const auto& [i, v] : rec.seen) indices.insert(i);
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(RunHooks, CancellationSkipsUnstartedPointsAndThrows) {
    ac::reset_sweep_cache();
    // Serial run, cancel flag raised by the first evaluation: point 0
    // finishes (it already started), the rest are skipped, and the batch
    // reports the cancellation as a typed error.
    std::atomic<bool> cancel{false};
    std::atomic<int> evals{0};
    ac::RunHooks hooks;
    hooks.cancelled = [&cancel] { return cancel.load(); };
    EXPECT_THROW(
        (void)ac::SweepRunner(1).run<int>(
            {pt("c0"), pt("c1"), pt("c2")},
            [&](const ac::SweepPoint&, std::size_t i) {
                evals.fetch_add(1);
                cancel.store(true);
                return static_cast<int>(i);
            },
            hooks),
        au::CancelledError);
    EXPECT_EQ(evals.load(), 1) << "cancellation did not stop the batch";

    // The completed point was promoted to the memo cache before the throw:
    // a retry evaluates only the two skipped points.
    std::atomic<int> retry_evals{0};
    const auto out = ac::SweepRunner(1).run<int>(
        {pt("c0"), pt("c1"), pt("c2")},
        [&](const ac::SweepPoint&, std::size_t i) {
            retry_evals.fetch_add(1);
            return static_cast<int>(i);
        });
    EXPECT_EQ(retry_evals.load(), 2);
    EXPECT_EQ(out[0], 0) << "cached result from the cancelled batch";
}

TEST(RunHooks, EvaluationErrorOutranksCancellation) {
    ac::reset_sweep_cache();
    // A batch that both throws and cancels must surface the evaluation
    // error — cancellation is bookkeeping, the error is the news.
    ac::RunHooks hooks;
    std::atomic<bool> cancel{false};
    hooks.cancelled = [&cancel] { return cancel.load(); };
    try {
        (void)ac::SweepRunner(1).run<int>(
            {pt("e0"), pt("e1")},
            [&](const ac::SweepPoint&, std::size_t) -> int {
                cancel.store(true);
                throw au::Error("evaluation exploded");
            },
            hooks);
        FAIL() << "batch did not throw";
    } catch (const au::CancelledError&) {
        FAIL() << "cancellation outranked the evaluation error";
    } catch (const au::Error& e) {
        EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
    }
}

TEST(RunHooks, TwoArgRunStillWorksWithoutHooks) {
    ac::reset_sweep_cache();
    const auto out = ac::SweepRunner(2).run<int>(
        {pt("nohooks")}, [](const ac::SweepPoint&, std::size_t) { return 9; });
    EXPECT_EQ(out[0], 9);
}

// ---- jobs_from_args ---------------------------------------------------------

namespace {

/// Mutable argv for jobs_from_args (which rewrites it in place).
struct Argv {
    explicit Argv(std::initializer_list<const char*> args) {
        for (const char* a : args) storage.emplace_back(a);
        for (auto& s : storage) ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(storage.size());
    }
    std::vector<std::string> storage;
    std::vector<char*> ptrs;
    int argc = 0;
};

} // namespace

TEST(JobsFromArgs, SpaceAndEqualsSyntaxBothConsume) {
    Argv a{"bench", "--jobs", "8", "--other"};
    EXPECT_EQ(au::jobs_from_args(a.argc, a.ptrs.data(), 1), 8);
    EXPECT_EQ(a.argc, 2);
    EXPECT_STREQ(a.ptrs[0], "bench");
    EXPECT_STREQ(a.ptrs[1], "--other");
    EXPECT_EQ(a.ptrs[2], nullptr);

    Argv b{"bench", "--jobs=3"};
    EXPECT_EQ(au::jobs_from_args(b.argc, b.ptrs.data(), 1), 3);
    EXPECT_EQ(b.argc, 1);
}

TEST(JobsFromArgs, FallbackWhenAbsent) {
    unsetenv("ARMSTICE_JOBS");
    Argv a{"bench", "--benchmark_filter=x"};
    EXPECT_EQ(au::jobs_from_args(a.argc, a.ptrs.data(), 7), 7);
    EXPECT_EQ(a.argc, 2);  // untouched
}

TEST(JobsFromArgs, EnvironmentBeatsFallback) {
    setenv("ARMSTICE_JOBS", "4", 1);
    Argv a{"bench"};
    EXPECT_EQ(au::jobs_from_args(a.argc, a.ptrs.data(), 1), 4);
    unsetenv("ARMSTICE_JOBS");
}

TEST(JobsFromArgs, FlagBeatsEnvironment) {
    setenv("ARMSTICE_JOBS", "4", 1);
    Argv a{"bench", "--jobs", "2"};
    EXPECT_EQ(au::jobs_from_args(a.argc, a.ptrs.data(), 1), 2);
    unsetenv("ARMSTICE_JOBS");
}

TEST(JobsFromArgs, RejectsBadValues) {
    {
        Argv a{"bench", "--jobs"};
        EXPECT_THROW((void)au::jobs_from_args(a.argc, a.ptrs.data(), 1), au::Error);
    }
    {
        Argv a{"bench", "--jobs", "0"};
        EXPECT_THROW((void)au::jobs_from_args(a.argc, a.ptrs.data(), 1), au::Error);
    }
    {
        Argv a{"bench", "--jobs=nope"};
        EXPECT_THROW((void)au::jobs_from_args(a.argc, a.ptrs.data(), 1), au::Error);
    }
}
