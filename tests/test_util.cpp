// Unit tests for the util substrate: statistics, tables, plots, CSV, RNG,
// string helpers.

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

namespace au = armstice::util;

TEST(Stats, MeanAndMedian) {
    EXPECT_DOUBLE_EQ(au::mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(au::median({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(au::median({5, 1, 3}), 3.0);
}

TEST(Stats, EmptyInputsThrow) {
    EXPECT_THROW(au::mean({}), au::Error);
    EXPECT_THROW(au::median({}), au::Error);
    EXPECT_THROW(au::relative_spread({}), au::Error);
    EXPECT_THROW(au::geomean({}), au::Error);
}

TEST(Stats, StddevMatchesDefinition) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(au::stddev(xs), 2.1380899, 1e-6);  // sample stddev
}

TEST(Stats, RunningStatsTracksMinMax) {
    au::RunningStats rs;
    for (double x : {3.0, -1.0, 7.0}) rs.add(x);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.min(), -1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
}

TEST(Stats, RunningStatsVarianceSingleSampleIsZero) {
    au::RunningStats rs;
    rs.add(5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, RelativeSpreadIsPaperVariationFlag) {
    // The paper flags runs varying >5% from the average.
    EXPECT_NEAR(au::relative_spread({100, 104}), 0.04, 1e-12);
    EXPECT_THROW(au::relative_spread({0.0, 1.0}), au::Error);
}

TEST(Stats, GeomeanOfRatios) {
    EXPECT_NEAR(au::geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_THROW(au::geomean({1.0, -1.0}), au::Error);
}

TEST(Table, RendersHeaderAndRows) {
    au::Table t("Title");
    t.header({"a", "bb"}).row({"1", "2"}).row({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
    au::Table t;
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), au::Error);
}

TEST(Table, RowsBeforeHeaderThrow) {
    au::Table t;
    EXPECT_THROW(t.row({"x"}), au::Error);
}

TEST(Table, NumFormatsFixed) {
    EXPECT_EQ(au::Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(au::Table::num(2.0, 0), "2");
}

TEST(Csv, EscapesSpecialCharacters) {
    au::Csv csv;
    csv.header({"a", "b"});
    csv.row({"plain", "with,comma"});
    csv.row({"quote\"inside", "multi\nline"});
    const std::string s = csv.render();
    EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, RowWidthCheckedAgainstHeader) {
    au::Csv csv;
    csv.header({"a", "b"});
    EXPECT_THROW(csv.row({"x"}), au::Error);
}

TEST(Plot, RendersAllSeriesMarkers) {
    au::Plot p("t", "x", "y");
    p.add_series({"s1", {1, 2, 3}, {1, 4, 9}});
    p.add_series({"s2", {1, 2, 3}, {9, 4, 1}});
    const std::string s = p.render();
    EXPECT_NE(s.find("s1"), std::string::npos);
    EXPECT_NE(s.find("s2"), std::string::npos);
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(Plot, LogAxisHandlesWideRange) {
    au::Plot p("t", "x", "y");
    p.add_series({"s", {1, 10, 100}, {1, 1000, 1e6}});
    EXPECT_NO_THROW(p.log_y().render());
}

TEST(Plot, RejectsBadSeries) {
    au::Plot p("t", "x", "y");
    EXPECT_THROW(p.add_series({"s", {1, 2}, {1}}), au::Error);
    EXPECT_THROW(p.add_series({"s", {}, {}}), au::Error);
    au::Plot empty("t", "x", "y");
    EXPECT_THROW(empty.render(), au::Error);
}

TEST(Rng, DeterministicForSameSeed) {
    au::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    au::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
    au::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, MeanOfUniformApproxHalf) {
    au::Rng rng(99);
    au::RunningStats rs;
    for (int i = 0; i < 20000; ++i) rs.add(rng.next_double());
    EXPECT_NEAR(rs.mean(), 0.5, 0.01);
}

TEST(Str, FormatBehavesLikePrintf) {
    EXPECT_EQ(au::format("%d-%s-%.1f", 7, "x", 2.5), "7-x-2.5");
    EXPECT_EQ(au::fixed(1.005, 2), "1.00");  // printf rounding of the double
}

TEST(Str, JoinWithSeparator) {
    EXPECT_EQ(au::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(au::join({}, ","), "");
    EXPECT_EQ(au::join({"solo"}, ","), "solo");
}

TEST(Units, FactorsAreConsistent) {
    EXPECT_DOUBLE_EQ(au::GiB, 1024.0 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(au::GB, 1e9);
    EXPECT_DOUBLE_EQ(32 * au::GiB / au::GB, 34.359738368);
    EXPECT_DOUBLE_EQ(2.2 * au::GHz, 2.2e9);
}

TEST(Error, CheckMacroThrowsWithContext) {
    try {
        ARMSTICE_CHECK(1 == 2, "custom context");
        FAIL() << "should have thrown";
    } catch (const au::Error& e) {
        EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
    }
}
