// Tests of the SVG chart renderer.

#include "util/error.hpp"
#include "util/svg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace au = armstice::util;

TEST(Svg, RendersWellFormedDocument) {
    au::SvgChart chart("Title & <stuff>", "x", "y");
    chart.add_series({"series \"a\"", {1, 2, 3}, {10, 20, 15}});
    chart.add_series({"b", {1, 2, 3}, {5, 6, 7}});
    const std::string svg = chart.render();
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // Escaped XML specials.
    EXPECT_NE(svg.find("Title &amp; &lt;stuff&gt;"), std::string::npos);
    EXPECT_NE(svg.find("series &quot;a&quot;"), std::string::npos);
    // One polyline per series.
    std::size_t count = 0;
    for (std::size_t pos = 0; (pos = svg.find("<polyline", pos)) != std::string::npos;
         ++pos) {
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(Svg, LogAxisRejectsNonPositive) {
    au::SvgChart chart("t", "x", "y");
    chart.add_series({"s", {1, 2}, {0.0, 5.0}});
    chart.log_y();
    EXPECT_THROW((void)chart.render(), au::Error);
}

TEST(Svg, LogAxisRendersDecades) {
    au::SvgChart chart("t", "x", "y");
    chart.add_series({"s", {1, 2, 3}, {1.0, 100.0, 10000.0}});
    const std::string svg = chart.log_y().render();
    EXPECT_NE(svg.find("1e+04"), std::string::npos);  // decade tick label
}

TEST(Svg, InvalidInputsThrow) {
    au::SvgChart chart("t", "x", "y");
    EXPECT_THROW(chart.add_series({"s", {1, 2}, {1}}), au::Error);
    EXPECT_THROW((void)chart.render(), au::Error);  // no series
    EXPECT_THROW(chart.size(10, 10), au::Error);
}

TEST(Svg, MarkersMatchPointCount) {
    au::SvgChart chart("t", "x", "y");
    chart.add_series({"s", {1, 2, 3, 4}, {1, 2, 3, 4}});
    const std::string svg = chart.render();
    std::size_t count = 0;
    for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
         ++pos) {
        ++count;
    }
    EXPECT_EQ(count, 4u);
}
