// Property tests of the roofline/ECM cost model (DESIGN.md §4.2): the
// qualitative behaviours every experiment relies on must hold for arbitrary
// phases and contexts.

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace aa = armstice::arch;

namespace {

aa::ComputePhase stream_phase(double flops = 1e9, double bytes = 1e8) {
    aa::ComputePhase p;
    p.label = "t";
    p.flops = flops;
    p.main_bytes = bytes;
    return p;
}

aa::ExecContext ctx_on(const aa::SystemSpec& sys, int streams = 1, int threads = 1) {
    aa::ExecContext ctx;
    ctx.cpu = &sys.node.cpu;
    ctx.streams_on_domain = streams;
    ctx.threads = threads;
    return ctx;
}

} // namespace

TEST(CostModel, TimeIsPositiveAndFinite) {
    const aa::CostModel m;
    const double t = m.phase_time(stream_phase(), ctx_on(aa::a64fx()));
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
}

TEST(CostModel, MonotonicInFlops) {
    const aa::CostModel m;
    const auto ctx = ctx_on(aa::archer());
    double prev = 0.0;
    for (double f : {1e8, 1e9, 1e10, 1e11}) {
        const double t = m.phase_time(stream_phase(f, 1.0), ctx);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(CostModel, MonotonicInBytes) {
    const aa::CostModel m;
    const auto ctx = ctx_on(aa::archer());
    double prev = 0.0;
    for (double b : {1e8, 1e9, 1e10, 1e11}) {
        const double t = m.phase_time(stream_phase(1.0, b), ctx);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(CostModel, ContentionSlowsSharedDomain) {
    const aa::CostModel m;
    const auto p = stream_phase(1.0, 1e9);  // memory-bound
    const double alone = m.phase_time(p, ctx_on(aa::ngio(), 1));
    const double crowded = m.phase_time(p, ctx_on(aa::ngio(), 24));
    EXPECT_GT(crowded, alone);
    // Contended slowdown bounded by the stream count.
    EXPECT_LE(crowded, 24.0 * alone * 1.01);
}

TEST(CostModel, ContentionKnobDisablesSharing) {
    aa::ModelKnobs knobs;
    knobs.contention = false;
    knobs.core_bw_cap = false;
    const aa::CostModel m(knobs);
    const auto p = stream_phase(1.0, 1e9);
    EXPECT_DOUBLE_EQ(m.phase_time(p, ctx_on(aa::ngio(), 1)),
                     m.phase_time(p, ctx_on(aa::ngio(), 24)));
}

TEST(CostModel, SingleStreamCappedByCoreBandwidth) {
    // One A64FX core must not see the whole 210 GB/s CMG (Table V anchor).
    const aa::CostModel m;
    const auto p = stream_phase(1.0, 55e9);
    const double t = m.phase_time(p, ctx_on(aa::a64fx(), 1));
    EXPECT_GE(t, 0.99);  // ~1 s at the 55 GB/s single-core cap
}

TEST(CostModel, GatherSlowerThanStreamPerByte) {
    const aa::CostModel m;
    auto p = stream_phase(1.0, 1e9);
    const double t_stream = m.phase_time(p, ctx_on(aa::a64fx(), 1));
    p.pattern = aa::MemPattern::gather;
    const double t_gather = m.phase_time(p, ctx_on(aa::a64fx(), 1));
    EXPECT_GT(t_gather, t_stream);
}

TEST(CostModel, DependentSlowestPattern) {
    const aa::CostModel m;
    auto p = stream_phase(1.0, 1e8);
    p.pattern = aa::MemPattern::gather;
    const double t_gather = m.phase_time(p, ctx_on(aa::fulhame(), 1));
    p.pattern = aa::MemPattern::dependent;
    const double t_dep = m.phase_time(p, ctx_on(aa::fulhame(), 1));
    EXPECT_GT(t_dep, t_gather);
}

TEST(CostModel, VectorisationSpeedsUpComputeBound) {
    const aa::CostModel m;
    auto p = stream_phase(1e11, 1.0);
    auto ctx = ctx_on(aa::a64fx(), 1);
    ctx.vec_quality = 0.9;
    p.vector_fraction = 1.0;
    const double t_vec = m.phase_time(p, ctx);
    p.vector_fraction = 0.0;
    const double t_scalar = m.phase_time(p, ctx);
    EXPECT_GT(t_scalar, 4.0 * t_vec);  // 8 SVE lanes x 0.9 quality
}

TEST(CostModel, NarrowVectorsGainLess) {
    // The same vectorisable phase gains more on SVE-512 than on NEON-128.
    const aa::CostModel m;
    auto p = stream_phase(1e11, 1.0);
    auto scalar = p;
    scalar.vector_fraction = 0.0;
    auto sve = ctx_on(aa::a64fx(), 1);
    auto neon = ctx_on(aa::fulhame(), 1);
    sve.vec_quality = neon.vec_quality = 0.8;
    const double gain_sve =
        m.phase_time(scalar, sve) / m.phase_time(p, sve);
    const double gain_neon =
        m.phase_time(scalar, neon) / m.phase_time(p, neon);
    EXPECT_GT(gain_sve, gain_neon);
}

TEST(CostModel, AmdahlBoundsThreadSpeedup) {
    const aa::CostModel m;
    auto p = stream_phase(1e10, 1.0);
    p.parallel_fraction = 0.9;
    auto ctx1 = ctx_on(aa::a64fx(), 1, 1);
    auto ctx12 = ctx_on(aa::a64fx(), 12, 12);
    const double s = m.phase_time(p, ctx1) / m.phase_time(p, ctx12);
    EXPECT_GT(s, 1.0);
    EXPECT_LT(s, 1.0 / (0.1 + 0.9 / 12.0) + 0.01);  // Amdahl limit
}

TEST(CostModel, AmdahlKnobDisablesSerialFraction) {
    aa::ModelKnobs knobs;
    knobs.amdahl = false;
    const aa::CostModel m(knobs);
    auto p = stream_phase(1e10, 1.0);
    p.parallel_fraction = 0.5;  // ignored when knob off
    const double t1 = m.phase_time(p, ctx_on(aa::a64fx(), 1, 1));
    const double t12 = m.phase_time(p, ctx_on(aa::a64fx(), 12, 12));
    EXPECT_NEAR(t1 / t12, 12.0, 0.01);
}

TEST(CostModel, CacheResidentWorkingSetUsesLlcBandwidth) {
    const aa::CostModel m;
    auto p = stream_phase(1.0, 1e9);
    auto ctx = ctx_on(aa::fulhame(), 32);  // heavy contention: 122/32 GB/s
    p.working_set = 64e3;                  // 64 KB — fits the 32 MiB LLC
    const double t_cached = m.phase_time(p, ctx);
    p.working_set = 1e9;  // spills
    const double t_mem = m.phase_time(p, ctx);
    EXPECT_LT(t_cached, t_mem);
}

TEST(CostModel, EfficiencyScalesTimeInversely) {
    const aa::CostModel m;
    auto p = stream_phase(1e9, 1e8);
    const auto ctx = ctx_on(aa::cirrus(), 4);
    p.efficiency = 1.0;
    const double t1 = m.phase_time(p, ctx);
    p.efficiency = 0.5;
    EXPECT_NEAR(m.phase_time(p, ctx), 2.0 * t1, 1e-9);
}

TEST(CostModel, OverheadIsAdditiveAndUnscaled) {
    const aa::CostModel m;
    auto p = stream_phase(1e6, 1e5);
    p.efficiency = 0.5;
    const double base = m.phase_time(p, ctx_on(aa::ngio()));
    p.overhead_s = 1.0;
    EXPECT_NEAR(m.phase_time(p, ctx_on(aa::ngio())), base + 1.0, 1e-12);
}

TEST(CostModel, ExplainTermsComposeToTotal) {
    const aa::CostModel m;
    auto p = stream_phase(1e9, 1e9);
    p.cache_bytes = 1e8;
    p.latency_ops = 1e5;
    p.overhead_s = 0.01;
    p.efficiency = 0.8;
    const auto b = m.explain(p, ctx_on(aa::a64fx(), 4));
    EXPECT_NEAR(b.total,
                (std::max(b.t_flops, b.t_mem) + b.t_cache + b.t_latency) / 0.8 +
                    b.t_overhead,
                1e-12);
}

TEST(CostModel, InvalidInputsThrow) {
    const aa::CostModel m;
    auto p = stream_phase();
    aa::ExecContext ctx;  // null cpu
    EXPECT_THROW((void)m.phase_time(p, ctx), armstice::util::Error);
    ctx = ctx_on(aa::a64fx());
    ctx.threads = 0;
    EXPECT_THROW((void)m.phase_time(p, ctx), armstice::util::Error);
    ctx = ctx_on(aa::a64fx());
    p.efficiency = 0.0;
    EXPECT_THROW((void)m.phase_time(p, ctx), armstice::util::Error);
    p.efficiency = 2.0;
    EXPECT_THROW((void)m.phase_time(p, ctx), armstice::util::Error);
}

TEST(CostModel, ScaledPhaseScalesWork) {
    const auto p = stream_phase(2e9, 4e8).scaled(0.5);
    EXPECT_DOUBLE_EQ(p.flops, 1e9);
    EXPECT_DOUBLE_EQ(p.main_bytes, 2e8);
}

// Bandwidth-sharing sweep: per-stream time never decreases with more
// streams, and aggregate throughput never decreases either.
class ContentionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContentionSweep, PerStreamAndAggregateMonotonic) {
    const aa::CostModel m;
    const auto p = stream_phase(1.0, 1e9);
    const int s = GetParam();
    const double t_s = m.phase_time(p, ctx_on(aa::ngio(), s));
    const double t_s1 = m.phase_time(p, ctx_on(aa::ngio(), s + 1));
    EXPECT_LE(t_s, t_s1 * 1.0000001);
    // Aggregate: s streams of 1e9 bytes each vs s+1 streams.
    EXPECT_GE((s + 1) / t_s1, s / t_s * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Streams, ContentionSweep,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 24, 32, 48));
