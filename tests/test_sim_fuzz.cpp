// Randomised property tests of the discrete-event engine: the shared
// sim::check generator (tests/sim_testlib.hpp) produces random programs that
// are deadlock-free by construction — collectives, ring shifts, crossing
// mixed-tag pairs, ANY_SOURCE funnels, random compute — and the global
// invariants must hold for every realisation.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "sim_testlib.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace as = armstice::sim;
namespace aa = armstice::arch;
namespace ck = armstice::sim::check;

class EngineFuzz : public ::testing::TestWithParam<unsigned long> {};

TEST_P(EngineFuzz, InvariantsHoldForRandomPrograms) {
    ck::GenConfig cfg;
    cfg.ranks = 4 + static_cast<int>(GetParam() % 29);
    const auto gc = ck::generate(GetParam() * 7919ul, cfg);

    auto placement = as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8);
    const auto res = engine.run(gc.programs);

    armstice::testlib::assert_invariants(gc, res);
    // Determinism: a second run is bit-identical, not merely close.
    armstice::testlib::assert_bit_identical(res, engine.run(gc.programs),
                                            "second run");
}

TEST_P(EngineFuzz, TraceCoversAllComputeTime) {
    ck::GenConfig cfg;
    cfg.ranks = 4 + static_cast<int>(GetParam() % 13);
    const auto gc = ck::generate(GetParam() * 104729ul, cfg);
    auto placement = as::Placement::block(aa::ngio().node, 1, gc.ranks, 1);
    const as::Engine engine(aa::ngio(), std::move(placement), 0.8);
    as::Trace trace;
    const auto res = engine.run(gc.programs, &trace);
    double total_compute = 0;
    for (const auto& r : res.ranks) total_compute += r.compute;
    EXPECT_NEAR(trace.total_seconds(as::SpanKind::compute), total_compute,
                1e-9 * std::max(1.0, total_compute));
    // Spans never overlap per rank (each rank is a serial timeline).
    std::vector<std::vector<std::pair<double, double>>> per_rank(
        static_cast<std::size_t>(gc.ranks));
    for (const auto& s : trace.spans()) {
        per_rank[static_cast<std::size_t>(s.rank)].push_back({s.begin, s.end});
    }
    for (auto& spans : per_rank) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i) {
            EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12);
        }
    }
}

TEST_P(EngineFuzz, UnmatchedRecvCasesAlwaysDeadlock) {
    ck::GenConfig cfg;
    cfg.ranks = 4 + static_cast<int>(GetParam() % 11);
    cfg.deadlock = ck::DeadlockKind::unmatched_recv;
    const auto gc = ck::generate(GetParam() * 6151ul, cfg);
    auto placement = as::Placement::block(aa::fulhame().node, 2, gc.ranks, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8);
    EXPECT_THROW((void)engine.run(gc.programs), armstice::util::DeadlockError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1ul, 2ul, 3ul, 5ul, 8ul, 13ul, 21ul, 34ul,
                                           55ul, 89ul));
