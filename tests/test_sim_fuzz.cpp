// Randomised property tests of the discrete-event engine: generate random
// programs that are deadlock-free by construction (paired sends/receives and
// world collectives) and check global invariants hold for every realisation.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace as = armstice::sim;
namespace aa = armstice::arch;

namespace {

struct FuzzCase {
    int ranks;
    std::vector<as::Program> programs;
    double total_flops = 0;
};

/// Build a random SPMD-ish program set: every round is either a collective
/// (all ranks), a ring shift (every rank sends to its successor and receives
/// from its predecessor), or per-rank compute of random size.
FuzzCase make_case(unsigned long seed, int ranks) {
    armstice::util::Rng rng(seed);
    FuzzCase fc;
    fc.ranks = ranks;
    fc.programs.resize(static_cast<std::size_t>(ranks));
    const int rounds = 3 + static_cast<int>(rng.next_below(8));
    for (int round = 0; round < rounds; ++round) {
        switch (rng.next_below(4)) {
            case 0: {
                const double bytes = rng.uniform(8, 1e5);
                for (auto& p : fc.programs) p.allreduce(bytes);
                break;
            }
            case 1:
                for (auto& p : fc.programs) p.barrier();
                break;
            case 2: {
                const double bytes = rng.uniform(1, 1e6);
                for (int r = 0; r < ranks; ++r) {
                    fc.programs[static_cast<std::size_t>(r)].send((r + 1) % ranks,
                                                                  bytes, round);
                }
                for (int r = 0; r < ranks; ++r) {
                    fc.programs[static_cast<std::size_t>(r)].recv(
                        (r + ranks - 1) % ranks, round);
                }
                break;
            }
            default: {
                for (int r = 0; r < ranks; ++r) {
                    aa::ComputePhase phase;
                    phase.label = "fuzz";
                    phase.flops = rng.uniform(1e6, 1e9);
                    phase.main_bytes = rng.uniform(1e4, 1e8);
                    phase.pattern = static_cast<aa::MemPattern>(rng.next_below(3));
                    fc.total_flops += phase.flops;
                    fc.programs[static_cast<std::size_t>(r)].compute(phase);
                }
                break;
            }
        }
    }
    return fc;
}

} // namespace

class EngineFuzz : public ::testing::TestWithParam<unsigned long> {};

TEST_P(EngineFuzz, InvariantsHoldForRandomPrograms) {
    const int ranks = 4 + static_cast<int>(GetParam() % 29);
    const auto fc = make_case(GetParam() * 7919ul, ranks);

    auto placement = as::Placement::block(aa::fulhame().node, 2, ranks, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8);
    const auto res = engine.run(fc.programs);

    // 1. Conservation: every counted flop is accounted for.
    EXPECT_NEAR(res.total_flops, fc.total_flops, 1e-6 * std::max(1.0, fc.total_flops));
    // 2. Makespan dominates every rank's finish and every component time.
    for (const auto& r : res.ranks) {
        EXPECT_LE(r.finish, res.makespan * (1 + 1e-12));
        EXPECT_GE(r.finish, r.compute - 1e-12);
        EXPECT_GE(r.recv_wait, 0.0);
        EXPECT_GE(r.collective_wait, 0.0);
        EXPECT_EQ(r.msgs_sent, r.msgs_received);  // ring shifts are balanced
    }
    // 3. Determinism.
    const auto res2 = engine.run(fc.programs);
    EXPECT_DOUBLE_EQ(res.makespan, res2.makespan);
}

TEST_P(EngineFuzz, TraceCoversAllComputeTime) {
    const int ranks = 4 + static_cast<int>(GetParam() % 13);
    const auto fc = make_case(GetParam() * 104729ul, ranks);
    auto placement = as::Placement::block(aa::ngio().node, 1, ranks, 1);
    const as::Engine engine(aa::ngio(), std::move(placement), 0.8);
    as::Trace trace;
    const auto res = engine.run(fc.programs, &trace);
    double total_compute = 0;
    for (const auto& r : res.ranks) total_compute += r.compute;
    EXPECT_NEAR(trace.total_seconds(as::SpanKind::compute), total_compute,
                1e-9 * std::max(1.0, total_compute));
    // Spans never overlap per rank (each rank is a serial timeline).
    std::vector<std::vector<std::pair<double, double>>> per_rank(
        static_cast<std::size_t>(ranks));
    for (const auto& s : trace.spans()) {
        per_rank[static_cast<std::size_t>(s.rank)].push_back({s.begin, s.end});
    }
    for (auto& spans : per_rank) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i) {
            EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1ul, 2ul, 3ul, 5ul, 8ul, 13ul, 21ul, 34ul,
                                           55ul, 89ul));
