// Relative-addressing collapse over halo exchanges (DESIGN.md §11.4): the
// simmpi halo helpers emit send_rel/recv_rel, so structurally symmetric
// ranks — the whole interior of a Cartesian decomposition — share one
// program AND stay merged through p2p. These tests pin the class-count wins
// (interior merged, only genuine symmetry breaks split), the split
// correctness at torus wraps and node-edge hop-tier changes, and the hard
// contract: bit-identical to collapse-off, RefEngine, and every perturbed
// schedule, at any checker job count.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/ref_engine.hpp"
#include "simmpi/minimpi.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace {

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace am = armstice::simmpi;
namespace ck = armstice::sim::check;

aa::ComputePhase phase(const char* label, double flops, double bytes) {
    aa::ComputePhase p;
    p.label = label;
    p.flops = flops;
    p.main_bytes = bytes;
    p.pattern = aa::MemPattern::stream;
    p.efficiency = 0.8;
    return p;
}

/// Rank-keyed OS noise shatters every class at the first compute op, which
/// would drown the halo-collapse signal these tests are about; the noisy
/// interaction is pinned separately in test_collapse.cpp.
aa::ModelKnobs quiet() {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    return knobs;
}

as::Engine make_engine(int ranks, int nodes) {
    return {aa::fulhame(),
            as::Placement::block(aa::fulhame().node, nodes, ranks, 1), 0.8,
            quiet()};
}

as::RunOptions no_collapse() {
    as::RunOptions opts;
    opts.collapse = false;
    return opts;
}

/// Halo-dominated SPMD iteration: exchange + spmv + allreduce, the op mix of
/// the paper's halo apps (hpcg/cosa skeletons) boiled down to its shape.
am::ProgramSet halo_app(const std::vector<std::vector<int>>& neighbors,
                        int iters, double bytes = 1.0e5) {
    am::ProgramSet ps(static_cast<int>(neighbors.size()));
    const auto spmv = phase("spmv", 2.4e7, 1.5e8);
    for (int it = 0; it < iters; ++it) {
        ps.halo_exchange(neighbors, bytes, /*tag=*/100 + it);
        ps.compute(spmv);
        ps.allreduce(8);
    }
    return ps;
}

std::vector<std::vector<int>> ring_neighbors(int ranks) {
    std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        nbrs[static_cast<std::size_t>(r)].push_back((r + 1) % ranks);
        nbrs[static_cast<std::size_t>(r)].push_back((r + ranks - 1) % ranks);
    }
    return nbrs;
}

#define EXPECT_BITEQ(a, b, what)                                          \
    do {                                                                  \
        const std::string d_ = ck::diff_results((a), (b));                \
        EXPECT_EQ(d_, "") << what;                                        \
    } while (0)

void expect_invariant(const as::Engine& eng, const as::RunResult& collapsed,
                      const as::ProgramBundle& bundle, const char* what) {
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()),
                 what << ": collapse on vs off");
    for (std::uint64_t seed : {0x4a105eedULL, 0x9e37ULL}) {
        as::RunOptions opts;
        opts.perturb_seed = seed;
        EXPECT_BITEQ(collapsed, eng.run(bundle, opts), what << ": perturbed");
    }
}

TEST(CollapseHalo, RingInteriorStaysMergedThroughP2p) {
    // 256 ranks on 4 nodes. In relative form the ring has three program
    // shapes (interior ±1, the two wrap ranks), and the interior class only
    // group-splits where the +1/-1 hop tier changes at a node edge — a
    // handful of classes, not one per rank.
    const int ranks = 256;
    const auto eng = make_engine(ranks, 4);
    const auto bundle = halo_app(ring_neighbors(ranks), /*iters=*/3).take_bundle();

    const auto collapsed = eng.run(bundle);
    EXPECT_LE(collapsed.collapse_classes, 16);
    // Node-edge hop-tier changes are placement geometry, counted as such.
    EXPECT_GE(collapsed.collapse_split_placement, 1);
    EXPECT_EQ(collapsed.collapse_split_noise, 0);
    EXPECT_EQ(eng.run(bundle, no_collapse()).collapse_classes, ranks);
    expect_invariant(eng, collapsed, bundle, "ring 256");
}

TEST(CollapseHalo, Torus2DWrapRanksSplitInteriorMerges) {
    // 16x16 periodic torus on 4 nodes: nine relative shapes (interior, four
    // edges, four corners — the wrap offsets differ), refined by hop tiers.
    const int ranks = 256;
    const auto dims = am::dims_create(ranks, 2);
    ASSERT_EQ(dims[0] * dims[1], ranks);
    const auto eng = make_engine(ranks, 4);
    const auto bundle =
        halo_app(am::cart_neighbors(dims, /*periodic=*/true), /*iters=*/3)
            .take_bundle();

    const auto collapsed = eng.run(bundle);
    EXPECT_LE(collapsed.collapse_classes * 4, ranks);
    EXPECT_EQ(collapsed.collapse_split_noise, 0);
    expect_invariant(eng, collapsed, bundle, "torus 16x16");
}

TEST(CollapseHalo, Torus3DCollapsesToSurfaceOrderClasses)  {
    // 8x8x8 periodic torus on 8 nodes: the tentpole's headline case — the
    // O(ranks) classes of absolute addressing become O(surface) relative
    // shape/tier groups; interior ranks stay merged through all six
    // exchanges per iteration.
    const int ranks = 512;
    const auto dims = am::dims_create(ranks, 3);
    ASSERT_EQ(dims[0] * dims[1] * dims[2], ranks);
    const auto eng = make_engine(ranks, 8);
    const auto bundle =
        halo_app(am::cart_neighbors(dims, /*periodic=*/true), /*iters=*/2)
            .take_bundle();

    const auto collapsed = eng.run(bundle);
    EXPECT_LE(collapsed.collapse_classes * 2, ranks);
    EXPECT_EQ(eng.run(bundle, no_collapse()).collapse_classes, ranks);
    expect_invariant(eng, collapsed, bundle, "torus 8x8x8");
}

TEST(CollapseHalo, NonDivisibleDecompositionsStayInvariant) {
    // Decompositions that don't tile the node or the grid evenly: a 6x5x3
    // non-periodic box (boundary categories dominate) and a chain where only
    // 45 of 64 ranks are active (idle tail shares one empty-exchange
    // program). Both must collapse below the rank count and stay invariant.
    {
        const auto dims = am::dims_create(90, 3);
        const auto eng = make_engine(90, 2);
        const auto bundle =
            halo_app(am::cart_neighbors(dims, /*periodic=*/false), /*iters=*/2)
                .take_bundle();
        const auto collapsed = eng.run(bundle);
        EXPECT_LT(collapsed.collapse_classes, 90);
        expect_invariant(eng, collapsed, bundle, "box 6x5x3");
    }
    {
        const auto eng = make_engine(64, 1);
        const auto bundle =
            halo_app(am::chain_neighbors(64, /*active=*/45), /*iters=*/3)
                .take_bundle();
        const auto collapsed = eng.run(bundle);
        EXPECT_LE(collapsed.collapse_classes, 8);
        expect_invariant(eng, collapsed, bundle, "chain 45/64");
    }
}

TEST(CollapseHalo, HopTierChangeForcesGroupedSplit) {
    // Wrap-boundary split correctness in isolation: neighbour pairs (2i,
    // 2i+1) exchange through identical relative offsets, but with 3 ranks
    // per node some pairs sit inside a node and some straddle an edge. The
    // shared classes must group-split by hop tier (one class per tier group,
    // NOT per rank), price both tiers correctly (RefEngine agrees), and
    // count the split as placement asymmetry — the tier is a property of
    // where the Placement put the pair, not of the op stream.
    const int ranks = 48;
    const auto eng = make_engine(ranks, 16);  // 3 ranks per node
    std::vector<as::Program> progs(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        auto& p = progs[static_cast<std::size_t>(r)];
        p.compute(phase("pair", 2.0e6, 1.0e7));
        const int off = (r % 2 == 0) ? 1 : -1;
        p.send_rel(off, 4.0e4, /*tag=*/9);
        p.recv_rel(off, /*tag=*/9);
        p.allreduce(8);
    }
    const auto bundle = as::ProgramBundle::from(progs);
    ASSERT_EQ(bundle.distinct(), 2);  // even/odd shapes share

    const as::RefEngine ref(
        aa::fulhame(),
        as::Placement::block(aa::fulhame().node, 16, ranks, 1), 0.8, quiet());
    const auto collapsed = eng.run(bundle);
    EXPECT_GE(collapsed.collapse_split_placement, 1);
    EXPECT_GE(collapsed.collapse_classes, 4);  // even/odd x intra/inter
    EXPECT_LE(collapsed.collapse_classes, 12);
    EXPECT_BITEQ(collapsed, ref.run(progs), "pair exchange vs RefEngine");
    expect_invariant(eng, collapsed, bundle, "pair exchange");
}

TEST(CollapseHalo, MatchesRefEngineOnTorus) {
    // RefEngine is O(ranks^2 * events): keep the differential at the small
    // end; the on/off checks above carry the large sizes.
    const auto dims = am::dims_create(36, 2);
    const auto eng = make_engine(36, 2);
    const as::RefEngine ref(aa::fulhame(),
                            as::Placement::block(aa::fulhame().node, 2, 36, 1),
                            0.8, quiet());
    const auto bundle =
        halo_app(am::cart_neighbors(dims, /*periodic=*/true), /*iters=*/2)
            .take_bundle();
    const auto vec =
        halo_app(am::cart_neighbors(dims, /*periodic=*/true), /*iters=*/2)
            .take();
    EXPECT_BITEQ(eng.run(bundle), ref.run(vec), "torus 6x6 vs RefEngine");
}

TEST(CollapseHalo, CheckSuiteWithHaloRoundsIsJobCountInvariant) {
    // The sim::check generator now emits relative-addressed halo rounds
    // (kind 7); run the differential/perturbation suite over them at jobs 1
    // and 8 and require a clean, byte-identical report — the "bit-identical
    // at any job count" leg of the contract.
    ck::CheckConfig cfg;
    cfg.first_seed = 0x4a10ULL;
    cfg.seeds = 24;
    cfg.perturbations = 2;
    cfg.deadlock_every = 6;
    cfg.jobs = 1;
    const auto one = ck::run_suite(aa::fulhame(), cfg);
    EXPECT_TRUE(one.ok()) << one.render();
    cfg.jobs = 8;
    const auto eight = ck::run_suite(aa::fulhame(), cfg);
    EXPECT_TRUE(eight.ok()) << eight.render();
    EXPECT_EQ(one.render(), eight.render());
}

} // namespace
