// util::fp::add_repeat — bit-exact fast-forward for repeated IEEE-754
// addition of one constant (DESIGN.md §10.2/§11: the collapsed engine's
// n-member class reductions must reproduce the literal n-step sequence
// acc = fl(acc + v)). The plain hardware loop IS the specification, so every
// test here is a differential against it: directed cases for the regimes the
// grid model special-cases (ties, saturation, binade crossings, subnormals,
// zeros, negatives, non-finites) plus randomized fuzz across magnitudes, and
// a composition property that exercises the fast path at counts no loop
// could check directly.

#include "util/fpadd.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace {

namespace fp = armstice::util::fp;

bool bit_eq(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The specification: n literal hardware steps.
double plain_loop(double acc, double v, long long n) {
    for (long long i = 0; i < n; ++i) acc += v;
    return acc;
}

#define EXPECT_BITS(fast, slow, what)                                       \
    do {                                                                    \
        const double f_ = (fast);                                           \
        const double s_ = (slow);                                           \
        EXPECT_PRED2(bit_eq, f_, s_)                                        \
            << what << ": add_repeat " << f_ << " vs loop " << s_;          \
    } while (0)

TEST(FpAddRepeat, DirectedRegimes) {
    constexpr double inf = std::numeric_limits<double>::infinity();
    constexpr double qnan = std::numeric_limits<double>::quiet_NaN();
    constexpr double denorm_min = 0x1p-1074;
    struct Case {
        double acc;
        double v;
        long long n;
        const char* what;
    };
    const Case cases[] = {
        {1.0, 0x1p-52, 100, "exact ulp steps, no rounding"},
        {1.0, 0x1.8p-52, 1000, "exact half-ulp ties (round to even)"},
        {1.0, 0x1p-54, 1000, "under half an ulp: immediate saturation"},
        {1.0, 0x1.0000001p-53, 100000, "just over half an ulp"},
        {1.0, 0x1p-20, 10000000, "many binade crossings"},
        {0.0, 0.1, 1000, "decimal drift from zero"},
        {denorm_min, 0x1.3p-1060, 100000, "subnormal grid march"},
        {0x1p-1030, denorm_min, 100, "subnormal acc, one-ulp march"},
        {1e300, 1e284, 100000, "huge magnitudes"},
        {1e308, 1e304, 100000, "march toward overflow/inf"},
        {-0.0, 0.0, 3, "-0.0 + 0.0 flips the sign bit once"},
        {-1.0, 0.25, 10, "negative acc: fallback loop"},
        {1.0, -0x1p-40, 5000, "negative v: fallback loop"},
        {inf, 1.0, 10, "inf acc is a fixed point"},
        {1.0, inf, 7, "inf v: non-finite fallback"},
        {qnan, 1.0, 7, "nan acc"},
        {3.0, 0.0, 9, "v == 0 is a fixed point"},
        {0.1, 0.3, 0, "n == 0 returns acc untouched"},
    };
    for (const Case& c : cases) {
        EXPECT_BITS(fp::add_repeat(c.acc, c.v, c.n), plain_loop(c.acc, c.v, c.n),
                    c.what);
    }
}

TEST(FpAddRepeat, FuzzAcrossMagnitudes) {
    armstice::util::Rng rng(0xf9addULL);
    for (int trial = 0; trial < 4000; ++trial) {
        // Magnitudes spanning subnormals to near-overflow, including exact
        // powers of two (grid edges) and values engineered to sit near the
        // half-ulp tie line of the starting binade.
        const int ea = static_cast<int>(rng.next_below(160)) - 80;
        const int ev = ea - static_cast<int>(rng.next_below(80)) + 10;
        double acc = std::ldexp(1.0 + rng.next_double(), ea);
        double v = std::ldexp(1.0 + rng.next_double(), ev);
        switch (rng.next_below(8)) {
            case 0: acc = std::ldexp(1.0, ea); break;          // binade edge
            case 1: v = std::ldexp(1.0, ev); break;            // power of two
            case 2: v = std::nextafter(acc, 2 * acc) - acc; break;  // one ulp
            case 3: v = 1.5 * (std::nextafter(acc, 2 * acc) - acc); break;
            case 4: acc = std::ldexp(1.0 + rng.next_double(), -1070); break;
            case 5: v = std::ldexp(1.0 + rng.next_double(), -1074 + ea / 2); break;
            default: break;
        }
        const long long n = 1 + static_cast<long long>(rng.next_below(3000));
        EXPECT_BITS(fp::add_repeat(acc, v, n), plain_loop(acc, v, n),
                    "trial " << trial << " acc=" << acc << " v=" << v
                             << " n=" << n);
        if (HasFailure()) break;
    }
}

TEST(FpAddRepeat, ComposesAtCountsNoLoopCouldCheck) {
    // fl-addition fast-forward must compose: n1+n2 steps equals n1 steps then
    // n2 steps, by definition of "the literal sequence". At n ~ 10^12 the
    // plain loop is unusable, but composition lets the fast path cross-check
    // itself at split points that shear the count unevenly — exactly how the
    // collapsed engine consumes it (per-class member counts in the millions).
    armstice::util::Rng rng(0xc0deULL);
    for (int trial = 0; trial < 50; ++trial) {
        const double acc = std::ldexp(1.0 + rng.next_double(),
                                      static_cast<int>(rng.next_below(40)) - 20);
        const double v = std::ldexp(1.0 + rng.next_double(),
                                    static_cast<int>(rng.next_below(40)) - 60);
        const long long n = 1000000000000LL + static_cast<long long>(
                                                  rng.next_below(1000000));
        const long long n1 = static_cast<long long>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        const double whole = fp::add_repeat(acc, v, n);
        const double split =
            fp::add_repeat(fp::add_repeat(acc, v, n1), v, n - n1);
        EXPECT_PRED2(bit_eq, whole, split)
            << "trial " << trial << " acc=" << acc << " v=" << v << " n=" << n
            << " n1=" << n1;
    }
}

} // namespace
