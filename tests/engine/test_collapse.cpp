// Rank-equivalence collapse (DESIGN.md §11): collapsed runs must be
// bit-identical to uncollapsed runs and to RefEngine, classes must form on
// (shared program, ExecContext class) and split exactly when an op can break
// the symmetry — p2p ops, noise-stretched compute, placement asymmetry, and
// ANY_SOURCE arrival races are each pinned by a directed case below.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/ref_engine.hpp"
#include "simmpi/minimpi.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace am = armstice::simmpi;
namespace ck = armstice::sim::check;

aa::ComputePhase phase(const char* label, double flops, double bytes) {
    aa::ComputePhase p;
    p.label = label;
    p.flops = flops;
    p.main_bytes = bytes;
    p.pattern = aa::MemPattern::stream;
    p.efficiency = 0.8;
    return p;
}

/// Fig-shaped SPMD iteration loop: compute + collectives + a ring halo, the
/// op mix of the paper's strong-scaling figures. Deterministic builder so it
/// can be materialised twice (bundle for the engine, vector for RefEngine).
am::ProgramSet fig_skeleton(int ranks, int iters) {
    am::ProgramSet ps(ranks);
    const auto spmv = phase("spmv", 2.4e7, 1.5e8);
    const auto axpy = phase("axpy", 1.0e6, 2.4e7);
    std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        if (ranks > 1) {
            neighbors[static_cast<std::size_t>(r)].push_back((r + 1) % ranks);
            neighbors[static_cast<std::size_t>(r)].push_back((r + ranks - 1) % ranks);
        }
    }
    for (int it = 0; it < iters; ++it) {
        if (ranks > 1) ps.halo_exchange(neighbors, 2.1e5);
        ps.compute(spmv);
        ps.allreduce(8);
        ps.compute(axpy);
        if (it % 3 == 0) ps.alltoall(256);
        ps.allreduce(8);
    }
    return ps;
}

as::Engine make_engine(int ranks, int nodes, aa::ModelKnobs knobs = {}) {
    return {aa::fulhame(),
            as::Placement::block(aa::fulhame().node, nodes, ranks, 1), 0.8,
            knobs};
}

as::RunOptions no_collapse() {
    as::RunOptions opts;
    opts.collapse = false;
    return opts;
}

#define EXPECT_BITEQ(a, b, what)                                          \
    do {                                                                  \
        const std::string d_ = ck::diff_results((a), (b));                \
        EXPECT_EQ(d_, "") << what;                                        \
    } while (0)

TEST(Collapse, FigWorkloadsBitIdenticalOnOffAndPerturbedAtScale) {
    for (int ranks : {48, 256, 1024}) {
        const int nodes = (ranks + 63) / 64;
        const auto eng = make_engine(ranks, nodes);
        const auto bundle = fig_skeleton(ranks, /*iters=*/4).take_bundle();
        const auto vec = fig_skeleton(ranks, /*iters=*/4).take();

        const auto collapsed = eng.run(bundle);
        const auto flat = eng.run(bundle, no_collapse());
        const auto per_rank = eng.run(vec);
        EXPECT_BITEQ(collapsed, flat, "collapse on vs off at " << ranks);
        EXPECT_BITEQ(collapsed, per_rank, "bundle vs vector at " << ranks);
        EXPECT_EQ(flat.collapse_classes, ranks);
        // The relative-addressed ring halo shares one interior program, but
        // default knobs carry os_noise > 0 so the classes shatter at the
        // first compute — the engine must agree with itself bit-for-bit
        // regardless of how far the collapse carries.
        for (std::uint64_t seed : {0xc011a95eULL, 0x5eedULL}) {
            as::RunOptions opts;
            opts.perturb_seed = seed;
            EXPECT_BITEQ(collapsed, eng.run(bundle, opts),
                         "perturbed collapse at " << ranks);
        }
    }
}

TEST(Collapse, SpmdFigWorkloadMatchesRefEngine) {
    // RefEngine is O(ranks^2 * events); keep it at the small end and let the
    // on/off differential above carry the large sizes.
    for (int ranks : {48, 96}) {
        const auto eng = make_engine(ranks, (ranks + 63) / 64);
        const as::RefEngine ref(
            aa::fulhame(),
            as::Placement::block(aa::fulhame().node, (ranks + 63) / 64, ranks, 1),
            0.8);
        const auto bundle = fig_skeleton(ranks, /*iters=*/3).take_bundle();
        const auto vec = fig_skeleton(ranks, /*iters=*/3).take();
        EXPECT_BITEQ(eng.run(bundle), ref.run(vec), "engine vs ref at " << ranks);
        EXPECT_BITEQ(eng.run(bundle), ref.run(bundle),
                     "engine vs ref bundle overload at " << ranks);
    }
}

TEST(Collapse, PureSpmdCollapsesToContextClassesUnderZeroNoise) {
    // 128 ranks on 2 fully-populated Fulhame nodes, no p2p, no noise: one
    // shared program and one ExecContext class => exactly one simulation
    // class, zero splits.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const int ranks = 128;
    const auto eng = make_engine(ranks, 2, knobs);
    am::ProgramSet ps(ranks);
    for (int it = 0; it < 5; ++it) {
        ps.compute(phase("jacobi", 3.0e7, 2.0e8));
        ps.allreduce(8);
    }
    ASSERT_TRUE(ps.spmd());
    const auto bundle = ps.take_bundle();
    ASSERT_EQ(bundle.distinct(), 1);

    const auto collapsed = eng.run(bundle);
    EXPECT_EQ(collapsed.collapse_classes, 1);
    EXPECT_EQ(collapsed.collapse_splits, 0);
    const auto flat = eng.run(bundle, no_collapse());
    EXPECT_EQ(flat.collapse_classes, ranks);
    EXPECT_BITEQ(collapsed, flat, "collapsed vs flat");
}

TEST(Collapse, OsNoiseForcesComputeSplit) {
    // Default knobs carry os_noise > 0 and the noise draw is keyed on the
    // rank, so a collapsed class must shatter at its first ComputeOp.
    const int ranks = 64;
    const auto eng = make_engine(ranks, 1);
    am::ProgramSet ps(ranks);
    ps.compute(phase("noisy", 1.0e7, 5.0e7));
    ps.allreduce(8);
    const auto bundle = ps.take_bundle();

    const auto collapsed = eng.run(bundle);
    // collapse_classes is the END-of-run count: the single initial class
    // shatters into per-rank singletons at the noisy compute op.
    EXPECT_EQ(collapsed.collapse_classes, ranks);
    EXPECT_EQ(collapsed.collapse_splits, 1);
    EXPECT_EQ(collapsed.collapse_split_noise, 1);
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()), "noise split");
}

TEST(Collapse, SharedRingSplitsOnFirstSend) {
    // Collective prologue keeps the class together; the ring send is the
    // first op that addresses an absolute rank and must trigger the split.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const int ranks = 8;
    const auto eng = make_engine(ranks, 1, knobs);
    as::Program proto;
    proto.allreduce(8);
    proto.compute(phase("pre", 1.0e6, 1.0e7));
    // Every rank sends to rank 0 (rank 0 to itself — a legal shm
    // self-message), keeping the bundle shared; eager sends let the ranks
    // finish with the messages unconsumed.
    proto.send(0, 4096, /*tag=*/7);
    const auto bundle = as::ProgramBundle::shared(proto, ranks);

    const auto collapsed = eng.run(bundle);
    // The absolute-addressed send shatters the class into singletons, so the
    // run ends with one class per rank after a single split event.
    EXPECT_EQ(collapsed.collapse_classes, ranks);
    EXPECT_EQ(collapsed.collapse_splits, 1);
    EXPECT_EQ(collapsed.collapse_split_p2p, 1);
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()), "send split");
}

TEST(Collapse, AnySourceFunnelSplitsAndStaysInvariant) {
    // Non-root ranks share one program (identical sends), the root is its
    // own class; the equal arrival times force the wildcard matcher through
    // its source-rank tie-break, which any collapse bug in send issue times
    // would perturb. The shared class must split at its SendOp before any
    // per-rank asymmetry can be observed.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const int ranks = 12;
    const auto eng = make_engine(ranks, 1, knobs);
    std::vector<as::Program> progs(static_cast<std::size_t>(ranks));
    for (int r = 1; r < ranks; ++r) {
        progs[static_cast<std::size_t>(r)].compute(phase("pre", 2.0e6, 1.0e7));
        progs[static_cast<std::size_t>(r)].send(0, 1024.0, /*tag=*/3);
        progs[static_cast<std::size_t>(r)].recv(0, /*tag=*/4);
    }
    for (int i = 1; i < ranks; ++i) {
        progs[0].recv(as::kAnySource, /*tag=*/3);
    }
    for (int r = 1; r < ranks; ++r) progs[0].send(r, 64.0, /*tag=*/4);
    const auto bundle = as::ProgramBundle::from(progs);
    ASSERT_EQ(bundle.distinct(), 2);

    const auto collapsed = eng.run(bundle);
    // The shared non-root class splits at its absolute SendOp, leaving one
    // class per rank by the end of the run.
    EXPECT_EQ(collapsed.collapse_classes, ranks);
    EXPECT_GE(collapsed.collapse_splits, 1);
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()), "funnel on/off");
    EXPECT_BITEQ(collapsed, eng.run(progs), "funnel bundle vs vector");
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        as::RunOptions opts;
        opts.perturb_seed = seed;
        EXPECT_BITEQ(collapsed, eng.run(bundle, opts), "funnel perturbed");
    }
}

TEST(Collapse, PlacementAsymmetryMakesSeparateClasses) {
    // 3 ranks on 2 nodes (block): the under-filled node's rank sees a
    // different stream count, so one shared program still yields two
    // ExecContext classes — collapse must keep them apart from the start.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const auto eng = make_engine(3, 2, knobs);
    am::ProgramSet ps(3);
    ps.compute(phase("imbalanced", 5.0e7, 3.0e8));
    ps.allreduce(8);
    const auto bundle = ps.take_bundle();
    ASSERT_EQ(bundle.distinct(), 1);

    const auto collapsed = eng.run(bundle);
    EXPECT_EQ(collapsed.collapse_classes, 2);
    EXPECT_EQ(collapsed.collapse_splits, 0);
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()), "asym placement");
    // Co-resident ranks share a class and replicate its stats exactly.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(collapsed.ranks[0].compute),
              std::bit_cast<std::uint64_t>(collapsed.ranks[1].compute));
}

TEST(Collapse, TraceForcesSingletonsAndMatchesCollapsedResult) {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const int ranks = 16;
    const auto eng = make_engine(ranks, 1, knobs);
    am::ProgramSet ps(ranks);
    ps.compute(phase("traced", 1.0e7, 8.0e7));
    ps.allreduce(8);
    const auto bundle = ps.take_bundle();

    as::Trace trace;
    const auto traced = eng.run(bundle, &trace);
    EXPECT_EQ(traced.collapse_classes, ranks);  // trace disables collapse
    EXPECT_FALSE(trace.spans().empty());
    EXPECT_BITEQ(eng.run(bundle), traced, "collapsed vs traced");
}

TEST(Collapse, HundredThousandRankSpmdSmoke) {
    // The scale the collapse exists for: 100k ranks, a handful of classes,
    // and the uncollapsed run (cheap here: few ops/rank) agrees bit-for-bit.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const int ranks = 100000;
    const int nodes = (ranks + 63) / 64;
    const auto eng = make_engine(ranks, nodes, knobs);
    am::ProgramSet ps(ranks);
    for (int it = 0; it < 5; ++it) {
        ps.compute(phase("spmv", 2.4e7, 1.5e8));
        ps.allreduce(8);
    }
    ASSERT_TRUE(ps.spmd());
    const auto bundle = ps.take_bundle();

    const auto collapsed = eng.run(bundle);
    EXPECT_LE(collapsed.collapse_classes, 2);  // full nodes + one partial
    EXPECT_GT(collapsed.makespan, 0.0);
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_collapse()), "100k on/off");
}

TEST(TieredP2p, EngineMatchesRefEngineAcrossTheOldTableCutoff) {
    // The dense node-pair table used to be gated by n_nodes <= 256; the
    // tiered hop table replaced it for every size. Straddle the old cutoff
    // and require bit-identity against RefEngine, whose sends price through
    // Network::p2p_time directly.
    for (int nodes : {200, 256, 257, 300}) {
        const int ranks = 64;  // round-robin: one rank per node, many hops
        const auto placement =
            as::Placement::round_robin(aa::fulhame().node, nodes, ranks, 1);
        const as::Engine eng(aa::fulhame(), placement, 0.8);
        const as::RefEngine ref(aa::fulhame(), placement, 0.8);
        std::vector<as::Program> progs(static_cast<std::size_t>(ranks));
        for (int r = 0; r < ranks; ++r) {
            auto& p = progs[static_cast<std::size_t>(r)];
            p.compute(phase("tier", 1.0e6 * (1 + r % 3), 1.0e7));
            p.send((r + 1) % ranks, 1.0e4 * (1 + r), /*tag=*/1);
            p.send((r + 7) % ranks, 2.5e3, /*tag=*/2);
            p.recv((r + ranks - 1) % ranks, /*tag=*/1);
            p.recv((r + ranks - 7) % ranks, /*tag=*/2);
            p.allreduce(8);
        }
        const auto a = eng.run(progs);
        EXPECT_BITEQ(a, ref.run(progs), "tiered p2p at " << nodes << " nodes");
        EXPECT_GT(a.ranks[0].msgs_received, 0);
    }
}

} // namespace
