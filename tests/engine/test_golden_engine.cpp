// Bit-identity goldens for Engine::run. Each case is a fig1–fig5 experiment
// configuration (plus HPCG/OpenSBLI table configs for coverage of every app
// family); its full AppResult — makespan, total flops, per-rank stats,
// phase_compute — is serialized with the persistent-cache codec (bit-exact
// doubles) and diffed byte-for-byte against the blob committed under
// tests/engine/goldens/. Engine optimizations (program sharing, phase-id
// interning, cost memoization, matching rewrites) must keep every byte
// unchanged; an intentional model change regenerates the goldens with
// ARMSTICE_REGEN_ENGINE_GOLDENS=1 and bumps arch::kModelVersion.
//
// Every case runs twice, through SweepRunner at --jobs 1 and --jobs 8 (memo
// cache reset in between), so the goldens also pin that concurrent engine
// execution is bit-identical to serial.

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "arch/system.hpp"
#include "core/app_codecs.hpp"
#include "core/runner.hpp"
#include "util/fileio.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#ifndef ARMSTICE_SOURCE_DIR
#error "tests/engine must be compiled with -DARMSTICE_SOURCE_DIR=<repo root>"
#endif

namespace aa = armstice::arch;
namespace ap = armstice::apps;
namespace ac = armstice::core;
namespace au = armstice::util;

namespace {

struct GoldenCase {
    std::string name;  ///< golden file stem; doubles as the sweep-point config
    std::function<ap::AppResult()> make;
};

std::vector<GoldenCase> golden_cases() {
    std::vector<GoldenCase> cases;

    // Fig 1: minikab setups on 2 A64FX nodes — hybrid and plain-MPI points.
    {
        ap::MinikabConfig c;
        c.nodes = 2, c.ranks = 16, c.threads = 6;
        cases.push_back({"fig1-minikab-a64fx-2n-16r-6t",
                         [c] { return ap::run_minikab(aa::a64fx(), c); }});
    }
    {
        ap::MinikabConfig c;
        c.nodes = 2, c.ranks = 48, c.threads = 1;
        cases.push_back({"fig1-minikab-a64fx-2n-48r-1t",
                         [c] { return ap::run_minikab(aa::a64fx(), c); }});
    }
    // Fig 2: minikab scaling, Fulhame at 64 ranks/node.
    {
        ap::MinikabConfig c;
        c.nodes = 2, c.ranks = 128, c.threads = 1;
        cases.push_back({"fig2-minikab-fulhame-2n-128r-1t",
                         [c] { return ap::run_minikab(aa::fulhame(), c); }});
    }
    // Fig 3: nekbone single-node core counts.
    {
        ap::NekboneConfig c;
        c.nodes = 1, c.ranks = 24;
        cases.push_back({"fig3-nekbone-a64fx-1n-24r",
                         [c] { return ap::run_nekbone(aa::a64fx(), c); }});
    }
    {
        ap::NekboneConfig c;
        c.nodes = 1, c.ranks = 32;
        cases.push_back({"fig3-nekbone-fulhame-1n-32r",
                         [c] { return ap::run_nekbone(aa::fulhame(), c); }});
    }
    // Fig 4: COSA strong scaling — a half-populated A64FX point and a
    // full-node Fulhame point (128 ranks, all active, uneven block counts).
    {
        ap::CosaConfig c;
        c.nodes = 2, c.ranks_per_node = 24;
        cases.push_back({"fig4-cosa-a64fx-2n-24ppn",
                         [c] { return ap::run_cosa(aa::a64fx(), c); }});
    }
    {
        ap::CosaConfig c;
        c.nodes = 2, c.ranks_per_node = 0;  // full node
        cases.push_back({"fig4-cosa-fulhame-2n-full",
                         [c] { return ap::run_cosa(aa::fulhame(), c); }});
    }
    // Fig 5: CASTEP single-node core counts (alltoall + allreduce heavy).
    {
        ap::CastepConfig c;
        c.nodes = 1, c.ranks = 12;
        cases.push_back({"fig5-castep-a64fx-1n-12r",
                         [c] { return ap::run_castep(aa::a64fx(), c).res; }});
    }
    {
        ap::CastepConfig c;
        c.nodes = 1, c.ranks = 16;
        cases.push_back({"fig5-castep-fulhame-1n-16r",
                         [c] { return ap::run_castep(aa::fulhame(), c).res; }});
    }
    // Tables III/X coverage: HPCG (per-core multigrid CG) and OpenSBLI
    // (halo-exchange stencil RK loop) exercise the remaining op mixes.
    {
        ap::HpcgConfig c;
        cases.push_back({"table3-hpcg-a64fx-1n",
                         [c] { return ap::run_hpcg(aa::a64fx(), 1, c).res; }});
    }
    {
        ap::OpensbliConfig c;
        c.nodes = 1, c.steps = 100;
        cases.push_back({"table10-opensbli-a64fx-1n",
                         [c] { return ap::run_opensbli(aa::a64fx(), c); }});
    }
    return cases;
}

std::string encode(const ap::AppResult& res) {
    au::ByteWriter w;
    ac::codec_detail::encode_app_result(w, res);
    return w.take();
}

std::string golden_path(const std::string& name) {
    return std::string(ARMSTICE_SOURCE_DIR) + "/tests/engine/goldens/" + name +
           ".bin";
}

bool regen_requested() {
    const char* v = std::getenv("ARMSTICE_REGEN_ENGINE_GOLDENS");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// Run every case through SweepRunner at the given pool size; results come
/// back by index.
std::vector<ap::AppResult> run_all(const std::vector<GoldenCase>& cases, int jobs) {
    std::vector<ac::SweepPoint> points;
    points.reserve(cases.size());
    for (const auto& c : cases) {
        points.push_back(ac::sweep_point("engine-golden", "mixed", 0, 0, 0, c.name));
    }
    return ac::SweepRunner(jobs).run<ap::AppResult>(
        points, [&](const ac::SweepPoint&, std::size_t i) { return cases[i].make(); });
}

void expect_bytes_equal(const std::string& got, const std::string& want,
                        const std::string& name, int jobs) {
    if (got == want) return;
    std::size_t first = 0;
    const std::size_t n = std::min(got.size(), want.size());
    while (first < n && got[first] == want[first]) ++first;
    FAIL() << name << " (--jobs " << jobs << "): RunResult drifted from golden ("
           << want.size() << " bytes committed vs " << got.size()
           << " regenerated; first difference at byte " << first
           << "). If the model change is intentional, rerun with "
           << "ARMSTICE_REGEN_ENGINE_GOLDENS=1 and bump arch::kModelVersion.";
}

} // namespace

TEST(GoldenEngine, ResultsBitIdenticalToGoldens) {
    const auto cases = golden_cases();

    if (regen_requested()) {
        ASSERT_TRUE(au::ensure_dir(std::string(ARMSTICE_SOURCE_DIR) +
                                   "/tests/engine/goldens"));
        ac::reset_sweep_cache();
        const auto results = run_all(cases, 1);
        for (std::size_t i = 0; i < cases.size(); ++i) {
            ASSERT_TRUE(
                au::write_file_atomic(golden_path(cases[i].name), encode(results[i])))
                << "could not write " << golden_path(cases[i].name);
        }
        GTEST_SKIP() << "regenerated " << cases.size() << " engine goldens";
    }

    for (const int jobs : {1, 8}) {
        ac::reset_sweep_cache();  // force re-evaluation on the second pass
        const auto results = run_all(cases, jobs);
        ASSERT_EQ(results.size(), cases.size());
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const auto golden = au::read_file(golden_path(cases[i].name));
            ASSERT_TRUE(golden.has_value())
                << "missing golden " << golden_path(cases[i].name)
                << " — generate with ARMSTICE_REGEN_ENGINE_GOLDENS=1";
            expect_bytes_equal(encode(results[i]), *golden, cases[i].name, jobs);
        }
    }
}

/// The golden blobs must describe feasible runs — an accidentally-infeasible
/// config would "pass" trivially with an empty RunResult.
TEST(GoldenEngine, GoldenCasesAreFeasible) {
    for (const auto& c : golden_cases()) {
        const auto res = c.make();
        EXPECT_TRUE(res.feasible) << c.name << ": " << res.note;
        EXPECT_GT(res.run.makespan, 0.0) << c.name;
        EXPECT_FALSE(res.run.phase_compute.empty()) << c.name;
    }
}
