// Pins the engine-internal contracts the scaling work in this PR relies on:
// the noise_sample(rank, op_index) stream (results are bit-identical only
// while this function is), the phase-label interner, ProgramBundle structural
// dedup, the take()/take_bundle() bit-identity promise, and the
// distance-aware alltoall pricing (block vs round-robin placement).

#include "arch/system.hpp"
#include "net/collectives.hpp"
#include "sim/engine.hpp"
#include "simmpi/minimpi.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace aa = armstice::arch;
namespace an = armstice::net;
namespace as = armstice::sim;
namespace am = armstice::simmpi;

namespace {

aa::ComputePhase phase(const char* label, double flops, double bytes) {
    aa::ComputePhase p;
    p.label = label;
    p.flops = flops;
    p.main_bytes = bytes;
    p.pattern = aa::MemPattern::stream;
    p.efficiency = 0.8;
    return p;
}

// ---- noise_sample ----------------------------------------------------------

// The OS-noise stretch applied to compute op `pc` on rank `r` is
//   u  = (splitmix64(0x9e3779b97f4a7c15 ^ (r << 32) ^ pc) >> 11) * 2^-53
//   dt *= 1 + os_noise * min(8, -log1p(-u))
// Every golden in tests/engine/goldens bakes this stream in; changing the
// seed mix, the 53-bit mantissa draw, or the exponential clamp is a model
// change and must bump arch::kModelVersion.
TEST(NoiseSample, PinsExactFormula) {
    for (int rank : {0, 1, 47, 1023}) {
        for (std::size_t pc : {std::size_t{0}, std::size_t{1}, std::size_t{999},
                               std::size_t{1} << 40}) {
            std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                                  (static_cast<std::uint64_t>(rank) << 32) ^ pc;
            const double u =
                static_cast<double>(armstice::util::splitmix64(state) >> 11) *
                0x1.0p-53;
            const double expect = std::min(8.0, -std::log1p(-u));
            EXPECT_EQ(as::noise_sample(rank, pc), expect)
                << "rank " << rank << " pc " << pc;
        }
    }
}

TEST(NoiseSample, DeterministicAndBounded) {
    std::set<double> seen;
    for (int rank = 0; rank < 8; ++rank) {
        for (std::size_t pc = 0; pc < 64; ++pc) {
            const double v = as::noise_sample(rank, pc);
            EXPECT_EQ(v, as::noise_sample(rank, pc));  // pure function
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 8.0);
            seen.insert(v);
        }
    }
    // The stream must vary by rank AND op index — a collapse to a few values
    // would mean the seed mix lost one of its inputs.
    EXPECT_GT(seen.size(), 500u);
}

// ---- phase-label interner --------------------------------------------------

TEST(PhaseTable, EmptyLabelIsAlwaysKNoPhase) {
    EXPECT_EQ(as::intern_phase_label(""), as::kNoPhase);
    EXPECT_EQ(as::kNoPhase, 0u);
}

TEST(PhaseTable, StableIdsAndRoundTrip) {
    const as::PhaseId a = as::intern_phase_label("engine-internals-spmv");
    const as::PhaseId b = as::intern_phase_label("engine-internals-symgs");
    EXPECT_NE(a, b);
    EXPECT_EQ(as::intern_phase_label("engine-internals-spmv"), a);
    EXPECT_EQ(as::phase_table().str(a), "engine-internals-spmv");
    EXPECT_EQ(as::phase_table().str(b), "engine-internals-symgs");
}

// ---- ProgramBundle structural sharing --------------------------------------

TEST(ProgramBundle, DedupsStructurallyIdenticalPrograms) {
    // Ranks 0 and 2 run the same program built independently; rank 1 differs
    // in a send destination, rank 3 in a phase's flop count.
    auto make = [](int dst, double flops) {
        as::Program p;
        p.compute(phase("halo-pack", flops, 4096));
        p.send(dst, 1024, 7);
        p.recv(as::kAnySource, 7);
        p.allreduce(8);
        return p;
    };
    std::vector<as::Program> progs;
    progs.push_back(make(1, 100.0));
    progs.push_back(make(0, 100.0));
    progs.push_back(make(1, 100.0));
    progs.push_back(make(1, 101.0));

    const auto bundle = as::ProgramBundle::from(std::move(progs));
    EXPECT_EQ(bundle.ranks(), 4);
    EXPECT_EQ(bundle.distinct(), 3);
    EXPECT_EQ(&bundle.of(0), &bundle.of(2));  // shared storage, not a copy
    EXPECT_NE(&bundle.of(0), &bundle.of(1));
    EXPECT_NE(&bundle.of(0), &bundle.of(3));
}

TEST(ProgramBundle, SharedIsSingleProgram) {
    as::Program p;
    p.compute(phase("spmd", 10.0, 10.0)).barrier();
    const auto bundle = as::ProgramBundle::shared(std::move(p), 48);
    EXPECT_EQ(bundle.ranks(), 48);
    EXPECT_EQ(bundle.distinct(), 1);
    EXPECT_EQ(&bundle.of(0), &bundle.of(47));
}

TEST(ProgramBundle, EqualCostDifferentLabelStaysDistinct) {
    // Same numeric cost inputs under two labels must not merge: per-phase
    // attribution (RunResult::phase_compute) depends on the label id.
    as::Program a;
    a.compute(phase("jacobi-x", 5.0, 40.0));
    as::Program b;
    b.compute(phase("jacobi-y", 5.0, 40.0));
    std::vector<as::Program> progs;
    progs.push_back(std::move(a));
    progs.push_back(std::move(b));
    const auto bundle = as::ProgramBundle::from(std::move(progs));
    EXPECT_EQ(bundle.distinct(), 2);
}

// ---- take() vs take_bundle() bit-identity ----------------------------------

am::ProgramSet mixed_workload(int ranks, int iters) {
    // SPMD prefix, then a rank-dependent middle (forces the copy-on-write
    // fork), then more SPMD — exercises prototype sharing AND dedup.
    am::ProgramSet ps(ranks);
    ps.mark("mixed");
    for (int it = 0; it < iters; ++it) {
        ps.compute(phase("stencil", 2.5e6, 1.6e7));
        ps.compute_by_rank([&](int r) {
            return phase("tail", 1e5 * (1 + r % 3), 8e5);
        });
        ps.halo_exchange({{1}, {0}}, 32768.0);
        ps.allreduce(8);
    }
    return ps;
}

TEST(ProgramSetBundle, BitIdenticalToPerRankVector) {
    const int ranks = 2;
    const as::Engine engine(
        aa::a64fx(), as::Placement::block(aa::a64fx().node, 1, ranks, 1), 0.8,
        aa::ModelKnobs{});

    const auto res_vec = engine.run(mixed_workload(ranks, 5).take());
    const auto res_bun = engine.run(mixed_workload(ranks, 5).take_bundle());

    EXPECT_EQ(res_vec.makespan, res_bun.makespan);  // exact, not NEAR
    EXPECT_EQ(res_vec.total_flops, res_bun.total_flops);
    ASSERT_EQ(res_vec.ranks.size(), res_bun.ranks.size());
    for (std::size_t r = 0; r < res_vec.ranks.size(); ++r) {
        EXPECT_EQ(res_vec.ranks[r].compute, res_bun.ranks[r].compute);
        EXPECT_EQ(res_vec.ranks[r].recv_wait, res_bun.ranks[r].recv_wait);
        EXPECT_EQ(res_vec.ranks[r].collective_wait,
                  res_bun.ranks[r].collective_wait);
        EXPECT_EQ(res_vec.ranks[r].finish, res_bun.ranks[r].finish);
    }
    EXPECT_EQ(res_vec.phase_compute, res_bun.phase_compute);
}

// ---- distance-aware alltoall (block vs round-robin) ------------------------

TEST(AlltoallPlacement, RoundRobinPricesAboveBlock) {
    // 6 ranks on 4 Fulhame nodes. Block packs (2,2,2,-): every rank has a
    // co-resident partner, so one of the 5 pairwise rounds stays on-node.
    // Round-robin scatters (2,2,1,1): the ranks alone on nodes 2 and 3 cross
    // the fabric for all 5 rounds, and the collective finishes when they do.
    // The old uniform-round-split model priced both layouts identically.
    const auto& sys = aa::fulhame();
    const int nodes = 4, ranks = 6;

    am::ProgramSet ps_b(ranks), ps_r(ranks);
    ps_b.alltoall(4096);
    ps_r.alltoall(4096);

    const as::Engine block(sys, as::Placement::block(sys.node, nodes, ranks, 1),
                           0.8, aa::ModelKnobs{});
    const as::Engine rr(
        sys, as::Placement::round_robin(sys.node, nodes, ranks, 1), 0.8,
        aa::ModelKnobs{});

    const double t_block = block.run(ps_b.take_bundle()).makespan;
    const double t_rr = rr.run(ps_r.take_bundle()).makespan;
    EXPECT_GT(t_rr, t_block);

    // Same contrast straight at the model: min occupancy 1 vs 2 with every
    // other layout field equal.
    const an::CollectiveModel coll(block.network());
    EXPECT_GT(coll.alltoall({4, 2, 6, 1}, 4096.0),
              coll.alltoall({3, 2, 6, 2}, 4096.0));
}

} // namespace
