// Trace-JIT superop compilation (DESIGN.md §13): straight-line run
// partitioning must stop exactly at wildcard/collective boundaries and dedup
// repeated iteration bodies by content id, guards must invalidate blocks on
// model-version / knob / rank mismatches (and a nonzero perturb_seed must
// force the JIT off entirely), linked blocks must be re-used across
// iterations rather than recompiled, and — the invariant everything else
// serves — JIT-on execution must be bit-identical to the plain interpreter,
// on raw program vectors, on collapsed bundles, under concurrent runs, and
// in the deadlock diagnosis it reports when a case stalls.

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/deadlock.hpp"
#include "sim/engine.hpp"
#include "sim/jit.hpp"
#include "sim/program.hpp"
#include "simmpi/minimpi.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace am = armstice::simmpi;
namespace ck = armstice::sim::check;
namespace aj = armstice::sim::jit;

aa::ComputePhase phase(const char* label, double flops, double bytes) {
    aa::ComputePhase p;
    p.label = label;
    p.flops = flops;
    p.main_bytes = bytes;
    p.pattern = aa::MemPattern::stream;
    p.efficiency = 0.8;
    return p;
}

as::Engine make_engine(int ranks, aa::ModelKnobs knobs = {}) {
    const int nodes = (ranks + 63) / 64;
    return {aa::fulhame(),
            as::Placement::block(aa::fulhame().node, nodes, ranks, 1), 0.8,
            knobs};
}

as::RunOptions no_jit() {
    as::RunOptions opts;
    opts.jit = false;
    return opts;
}

/// Halo + collective iteration loop with a MarkOp region — the op mix whose
/// repeated bodies the JIT exists to compile (and whose phase_compute map
/// diff_results compares key-by-key, so marks are part of the identity).
am::ProgramSet loop_skeleton(int ranks, int iters) {
    am::ProgramSet ps(ranks);
    const auto spmv = phase("spmv", 2.4e7, 1.5e8);
    const auto axpy = phase("axpy", 1.0e6, 2.4e7);
    std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        if (ranks > 1) {
            neighbors[static_cast<std::size_t>(r)].push_back((r + 1) % ranks);
            neighbors[static_cast<std::size_t>(r)].push_back((r + ranks - 1) % ranks);
        }
    }
    ps.mark("jit-loop");
    for (int it = 0; it < iters; ++it) {
        if (ranks > 1) ps.halo_exchange(neighbors, 2.1e5);
        ps.compute(spmv);
        ps.compute(axpy);
        ps.allreduce(8);
    }
    return ps;
}

#define EXPECT_BITEQ(a, b, what)                                          \
    do {                                                                  \
        const std::string d_ = ck::diff_results((a), (b));                \
        EXPECT_EQ(d_, "") << what;                                        \
    } while (0)

// ---- run partitioning (program layer the JIT consumes) ---------------------

TEST(JitRunTable, PartitionsAtBoundariesAndDedupsRepeatedBodies) {
    const auto a = phase("a", 1e7, 1e6);
    const auto b = phase("b", 2e7, 3e6);
    as::Program p;
    constexpr int kIters = 3;
    for (int it = 0; it < kIters; ++it) {
        // 5-op straight-line body, then a collective boundary.
        p.mark("body").compute(a).send(1, 256, 7).recv(2, 7).compute(b);
        p.allreduce(8);
    }
    p.recv(as::kAnySource, 9);  // wildcard boundary
    p.compute(a);               // 1-op tail run
    p.finalize_op_runs();

    const as::OpRunTable& rt = p.op_runs;
    ASSERT_EQ(rt.source_ops, p.ops.size());
    ASSERT_EQ(rt.runs.size(), 4u);
    for (int it = 0; it < kIters; ++it) {
        const as::OpRun& r = rt.runs[static_cast<std::size_t>(it)];
        EXPECT_EQ(r.start, static_cast<std::uint32_t>(6 * it));
        EXPECT_EQ(r.len, 5u);
        EXPECT_TRUE(r.has_p2p);
        EXPECT_TRUE(r.has_compute);
        // Same content => same id and hash: anything verified against
        // iteration 0's body holds for every iteration.
        EXPECT_EQ(r.id, rt.runs[0].id);
        EXPECT_EQ(r.hash, rt.runs[0].hash);
    }
    const as::OpRun& tail = rt.runs[3];
    EXPECT_EQ(tail.start, static_cast<std::uint32_t>(6 * kIters + 1));
    EXPECT_EQ(tail.len, 1u);
    EXPECT_FALSE(tail.has_p2p);
    EXPECT_NE(tail.id, rt.runs[0].id);
    EXPECT_EQ(rt.distinct, 2u);

    // Boundary keys sit in the gaps: the allreduces and the wildcard recv.
    const as::OpKey* keys = p.op_keys.data();
    EXPECT_TRUE(as::op_key_is_boundary(keys[5]));
    EXPECT_EQ(as::op_key_kind(keys[5]), as::OpKeyKind::allreduce);
    EXPECT_EQ(as::op_key_kind(keys[6 * kIters]), as::OpKeyKind::recv_any);

    // scan_run (the JIT's on-demand scanner) must agree with the table on
    // length and hash at every run start, and report len 0 at boundaries.
    for (const as::OpRun& r : rt.runs) {
        const aj::RunScan scan = aj::scan_run(keys, r.start, p.ops.size());
        EXPECT_EQ(scan.len, r.len);
        EXPECT_EQ(scan.hash, r.hash);
        EXPECT_EQ(scan.has_p2p, r.has_p2p);
        EXPECT_EQ(scan.has_compute, r.has_compute);
    }
    EXPECT_EQ(aj::scan_run(keys, 5, p.ops.size()).len, 0u);

    // Idempotent; appending ops invalidates and a re-finalize rebuilds.
    p.finalize_op_runs();
    EXPECT_EQ(rt.runs.size(), 4u);
    p.compute(b);
    EXPECT_NE(p.op_runs.source_ops, p.ops.size());
    p.finalize_op_runs();
    EXPECT_EQ(p.op_runs.source_ops, p.ops.size());
    EXPECT_EQ(p.op_runs.runs.back().len, 2u);  // tail run grew: compute+compute
}

TEST(JitRunTable, ChunksRunsAtTheCap) {
    const auto a = phase("a", 1e7, 1e6);
    as::Program p;
    const std::size_t n = as::kOpRunCap + 100;
    for (std::size_t i = 0; i < n; ++i) p.compute(a);
    p.finalize_op_runs();
    ASSERT_EQ(p.op_runs.runs.size(), 2u);
    EXPECT_EQ(p.op_runs.runs[0].len, as::kOpRunCap);
    EXPECT_EQ(p.op_runs.runs[1].start, as::kOpRunCap);
    EXPECT_EQ(p.op_runs.runs[1].len, 100u);
    // The JIT's own cap aliases the program layer's — a drift would break
    // the cursor/scan agreement the fast path relies on.
    EXPECT_EQ(aj::kMaxRun, as::kOpRunCap);
}

// ---- guards ----------------------------------------------------------------

TEST(JitGuards, FingerprintSeparatesKnobs) {
    const aa::ModelKnobs base;
    EXPECT_EQ(aj::knobs_fingerprint(base), aj::knobs_fingerprint(base));
    aa::ModelKnobs quiet = base;
    quiet.os_noise = 0;
    EXPECT_NE(aj::knobs_fingerprint(base), aj::knobs_fingerprint(quiet));
    aa::ModelKnobs flipped = base;
    flipped.contention = !flipped.contention;
    EXPECT_NE(aj::knobs_fingerprint(base), aj::knobs_fingerprint(flipped));
}

TEST(JitGuards, MatchSemantics) {
    aj::Guards have;
    have.model_version = aa::kModelVersion;
    have.knobs_fp = 42;
    have.ctx = 7;
    have.rank = -1;  // rank-neutral: shared across ranks
    aj::Guards want = have;
    want.rank = 123;
    EXPECT_TRUE(aj::guards_match(have, want));

    aj::Guards p2p = have;
    p2p.rank = 5;  // p2p block: compiled queue indices are rank-local
    want.rank = 5;
    EXPECT_TRUE(aj::guards_match(p2p, want));
    want.rank = 6;
    EXPECT_FALSE(aj::guards_match(p2p, want));

    aj::Guards stale = have;
    stale.model_version = aa::kModelVersion + 1;
    want = have;
    EXPECT_FALSE(aj::guards_match(stale, want));
    stale = have;
    stale.knobs_fp = 43;
    EXPECT_FALSE(aj::guards_match(stale, want));
    stale = have;
    stale.ctx = 8;
    EXPECT_FALSE(aj::guards_match(stale, want));
}

// ---- engine-level behaviour ------------------------------------------------

TEST(Jit, CompilesBlocksAndMatchesInterpreterBitForBit) {
    for (int ranks : {2, 32}) {
        const auto eng = make_engine(ranks);
        const auto bundle = loop_skeleton(ranks, /*iters=*/12).take_bundle();
        const auto vec = loop_skeleton(ranks, /*iters=*/12).take();

        const auto interp = eng.run(bundle, no_jit());
        EXPECT_EQ(interp.jit_blocks, 0);
        EXPECT_EQ(interp.jit_ops, 0);

        const auto jitted = eng.run(bundle);
        EXPECT_GT(jitted.jit_blocks, 0) << ranks << " ranks";
        EXPECT_GT(jitted.jit_ops, 0);
        EXPECT_BITEQ(interp, jitted, "jit on vs off at " << ranks << " ranks");
        EXPECT_BITEQ(interp, eng.run(vec),
                     "jit on raw vector (derived run tables) at " << ranks);
    }
}

TEST(Jit, ReusesLinkedBlocksAcrossIterations) {
    const auto eng = make_engine(32);
    const auto bundle = loop_skeleton(32, /*iters=*/20).take_bundle();
    const auto res = eng.run(bundle);
    // 20 identical iteration bodies per rank must resolve to a handful of
    // compiled blocks executed over and over, not 20 fresh compilations.
    EXPECT_GT(res.jit_block_runs, 5 * static_cast<long long>(res.jit_blocks));
    long ops = 0;
    for (int r = 0; r < bundle.ranks(); ++r) {
        ops += static_cast<long>(bundle.of(r).ops.size());
    }
    // The interpreter only keeps boundary ops (collectives) and suspended
    // retries; the bulk must flow through blocks.
    EXPECT_GT(res.jit_ops, ops / 2);
}

TEST(Jit, PerturbSeedForcesTheJitOffAndStaysBitIdentical) {
    const auto eng = make_engine(16);
    const auto bundle = loop_skeleton(16, /*iters=*/8).take_bundle();
    const auto base = eng.run(bundle);
    EXPECT_GT(base.jit_ops, 0);
    as::RunOptions shaken;
    shaken.perturb_seed = 0x5eedULL;
    const auto perturbed = eng.run(bundle, shaken);
    // The determinism adversary must exercise raw per-op scheduling: any
    // nonzero perturb_seed disables superop execution outright...
    EXPECT_EQ(perturbed.jit_blocks, 0);
    EXPECT_EQ(perturbed.jit_block_runs, 0);
    EXPECT_EQ(perturbed.jit_ops, 0);
    // ...and the result still must not move by a bit.
    EXPECT_BITEQ(base, perturbed, "jit on vs perturbed interpreter");
}

TEST(Jit, KnobChangesRepriceInsteadOfReusingStaleBlocks) {
    // Same programs under different knob sets: each engine's JIT must price
    // with its own knobs (knobs_fp guard), so jit-on tracks jit-off within
    // every knob set while the knob sets themselves disagree.
    const auto bundle = loop_skeleton(8, /*iters=*/6).take_bundle();
    aa::ModelKnobs quiet;
    quiet.os_noise = 0;
    aa::ModelKnobs flipped;
    flipped.contention = !flipped.contention;
    const auto base = make_engine(8).run(bundle);
    for (const aa::ModelKnobs& knobs : {quiet, flipped}) {
        const auto eng = make_engine(8, knobs);
        const auto on = eng.run(bundle);
        const auto off = eng.run(bundle, no_jit());
        EXPECT_BITEQ(on, off, "jit on vs off under modified knobs");
    }
    // os_noise reaches every compute op: zeroing it must visibly change the
    // modelled result (if it didn't, the biteq above would prove nothing).
    EXPECT_NE(ck::diff_results(base, make_engine(8, quiet).run(bundle)), "")
        << "knob change must change the modelled result";
}

TEST(Jit, CollapsedSpmdClassesShareRankNeutralBlocks) {
    // Pure-SPMD compute/collective program, noiseless: one collapsed class
    // executes rank-neutral blocks (Guards::rank == -1). Collapse on/off and
    // jit on/off must all agree bit-for-bit.
    aa::ModelKnobs quiet;
    quiet.os_noise = 0;  // rank-keyed noise would split every class
    as::Program proto;
    const auto spmv = phase("spmv", 2.4e7, 1.5e8);
    const auto axpy = phase("axpy", 1.0e6, 2.4e7);
    for (int it = 0; it < 10; ++it) {
        // Two computes per body: single-op runs sit below jit::kMinRun and
        // would leave the whole program to the interpreter.
        proto.compute(spmv).compute(axpy).allreduce(8);
    }
    const int ranks = 4096;
    const auto bundle = as::ProgramBundle::shared(proto, ranks);
    const auto eng = make_engine(ranks, quiet);
    const auto collapsed = eng.run(bundle);
    EXPECT_EQ(collapsed.collapse_classes, 1);
    EXPECT_GT(collapsed.jit_ops, 0);
    as::RunOptions flat;
    flat.collapse = false;
    EXPECT_BITEQ(collapsed, eng.run(bundle, flat), "collapsed vs flat, jit on");
    as::RunOptions flat_nojit = flat;
    flat_nojit.jit = false;
    EXPECT_BITEQ(collapsed, eng.run(bundle, flat_nojit),
                 "collapsed jit on vs flat interpreter");
    EXPECT_BITEQ(collapsed, eng.run(bundle, no_jit()),
                 "collapsed jit on vs collapsed interpreter");
}

TEST(Jit, WildcardHeavyCasesStayBitIdentical) {
    // Generated cases with ANY_SOURCE funnels and mixed-tag crossings: the
    // wildcard receives are boundaries the JIT must leave to the
    // interpreter's quiescence machinery, whatever surrounds them.
    for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
        const ck::GeneratedCase gc = ck::generate(seed);
        const auto eng = make_engine(gc.ranks);
        const auto interp = eng.run(gc.programs, no_jit());
        const auto jitted = eng.run(gc.programs);
        EXPECT_BITEQ(interp, jitted, "generated case seed " << seed);
    }
}

TEST(Jit, ConcurrentJitRunsMatchTheInterpreter) {
    // `run` is const and the block cache is per-run state: eight threads
    // JIT-compiling the same bundle concurrently must each reproduce the
    // single-threaded interpreter result exactly.
    const auto eng = make_engine(32);
    const auto bundle = loop_skeleton(32, /*iters=*/10).take_bundle();
    const auto base = eng.run(bundle, no_jit());
    EXPECT_BITEQ(base, eng.run(bundle), "jobs 1");

    constexpr int kJobs = 8;
    std::vector<as::RunResult> out(kJobs);
    std::vector<std::thread> threads;
    threads.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        threads.emplace_back([&eng, &bundle, &out, i] {
            out[static_cast<std::size_t>(i)] = eng.run(bundle);
        });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_BITEQ(base, out[static_cast<std::size_t>(i)], "job " << i);
    }
}

TEST(Jit, DeadlockDiagnosisIsIdenticalOnAndOff) {
    ck::GenConfig cfg;
    cfg.deadlock = ck::DeadlockKind::recv_cycle;
    const ck::GeneratedCase gc = ck::generate(42, cfg);
    const auto eng = make_engine(gc.ranks);
    const auto diagnose = [&](const as::RunOptions& opts) -> std::string {
        try {
            (void)eng.run(gc.programs, opts);
        } catch (const as::DeadlockError& e) {
            return e.graph().render();
        }
        ADD_FAILURE() << "deadlock not detected";
        return "";
    };
    const std::string on = diagnose(as::RunOptions{});
    const std::string off = diagnose(no_jit());
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

} // namespace
