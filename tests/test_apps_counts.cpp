// Skeleton-vs-reference count cross-checks (DESIGN.md §5): the analytic
// counts the simulator prices must equal the instrumented counts of the real
// kernels at matching sizes.

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "kern/fft/fft.hpp"
#include "kern/nek/spectral.hpp"
#include "kern/sparse/csr.hpp"
#include "kern/stencil/taylor_green.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ap = armstice::apps;
namespace ak = armstice::kern;

class Nnz27Formula : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Nnz27Formula, MatchesRealMatrixBuilder) {
    const auto [nx, ny, nz] = GetParam();
    const auto a = ak::poisson27(nx, ny, nz);
    EXPECT_DOUBLE_EQ(ap::nnz_27pt(nx, ny, nz), static_cast<double>(a.nnz()));
}

INSTANTIATE_TEST_SUITE_P(Grids, Nnz27Formula,
                         ::testing::Values(std::tuple{2, 2, 2}, std::tuple{4, 4, 4},
                                           std::tuple{3, 5, 7}, std::tuple{8, 8, 8},
                                           std::tuple{10, 6, 4}));

class NekAxFormula : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NekAxFormula, MatchesInstrumentedAx) {
    const auto [elems, nx1] = GetParam();
    const ak::NekMesh mesh(elems, nx1);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0), w(u.size());
    ak::OpCounts c;
    mesh.ax(u, w, &c);
    EXPECT_DOUBLE_EQ(ak::NekMesh::ax_flops(elems, nx1), c.flops);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NekAxFormula,
                         ::testing::Values(std::tuple{1, 6}, std::tuple{4, 8},
                                           std::tuple{2, 16}, std::tuple{8, 4}));

TEST(TgvCounts, StepFormulaMatchesInstrumented) {
    for (int n : {8, 16}) {
        ak::TaylorGreen tg(n);
        ak::OpCounts c;
        tg.step(tg.stable_dt(), &c);
        const double pts = static_cast<double>(n) * n * n;
        EXPECT_DOUBLE_EQ(c.flops, ak::TaylorGreen::step_flops_per_point() * pts) << n;
    }
}

TEST(CastepCounts, ReferenceFftFlopsMatchConvention) {
    // castep_reference runs `bands` FFT round trips + 1 ZGEMM; its counted
    // flops must decompose into the analytic formulas the skeleton uses.
    const int grid = 16;
    const int bands = 3;
    const auto c = ap::castep_reference(grid, bands);
    const double n3 = static_cast<double>(grid) * grid * grid;
    const int npw = std::max(8, grid * grid / 4);
    const double fft_part =
        bands * (2.0 * ak::fft3d_flops(grid) + 2.0 * n3 + 6.0 * n3);
    //        forward + inverse           potential   ifft 1/N scaling
    //                                                (2 flops x 3 pencil passes)
    const double gemm_part = ak::zgemm_flops(bands, npw, bands);
    // The reference also runs the Jacobi subspace diagonalisation, whose
    // flop count depends on the sweeps taken: bracket it.
    const double eigen_upper = 30.0 * 18.0 * bands * bands * bands;
    EXPECT_GE(c.flops, fft_part + gemm_part);
    EXPECT_LE(c.flops, fft_part + gemm_part + eigen_upper);
}

TEST(HpcgCounts, SkeletonFlopsTrackOfficialCounting) {
    // Per CG iteration HPCG counts: spmv(2 nnz) + mg(~4.5 nnz-equivalents)
    // + blas1. Run the skeleton and check counted flops per iteration per
    // rank sit in that window.
    ap::HpcgConfig cfg;
    cfg.iters = 2;
    const auto out = ap::run_hpcg(armstice::arch::a64fx(), 1, cfg);
    ASSERT_TRUE(out.res.feasible);
    const double nnz = ap::nnz_27pt(80, 80, 80);
    const double per_rank_iter = out.res.run.total_flops / 48.0 / 2.0;
    EXPECT_GT(per_rank_iter, 2.0 * nnz + 4.0 * nnz);   // spmv + 2 symgs at L0
    EXPECT_LT(per_rank_iter, 2.0 * nnz + 12.0 * nnz);  // bounded by full hierarchy
}

TEST(MinikabCounts, SkeletonMatchesCgIterationArithmetic) {
    ap::MinikabConfig cfg;
    cfg.iterations = 1;
    const auto out = ap::run_minikab(armstice::arch::ngio(), cfg);
    ASSERT_TRUE(out.feasible);
    // 2 nnz (spmv) + 10 n (blas1).
    const double expect = 2.0 * cfg.nnz + 10.0 * static_cast<double>(cfg.rows);
    EXPECT_NEAR(out.run.total_flops, expect, 1e-6 * expect);
}

TEST(NekboneCounts, SkeletonUsesExactAxFlops) {
    ap::NekboneConfig cfg;
    cfg.ranks = 1;
    cfg.cg_iters = 1;
    const auto out = ap::run_nekbone(armstice::arch::a64fx(), cfg);
    ASSERT_TRUE(out.feasible);
    const double n = 200.0 * 16 * 16 * 16;
    const double expect = ak::NekMesh::ax_flops(200, 16) + 13.0 * n;
    EXPECT_NEAR(out.run.total_flops, expect, 1e-9 * expect);
}

TEST(OpensbliCounts, SkeletonUsesRealStepCounts) {
    ap::OpensbliConfig cfg;
    cfg.steps = 1;
    cfg.nodes = 1;
    const auto out = ap::run_opensbli(armstice::arch::ngio(), cfg);
    ASSERT_TRUE(out.feasible);
    const double expect =
        ak::TaylorGreen::step_flops_per_point() * 64.0 * 64.0 * 64.0;
    EXPECT_NEAR(out.run.total_flops, expect, 1e-9 * expect);
}

TEST(FootprintModels, MatchPaperMemoryNarrative) {
    // HPCG 80^3 x 48 ranks fits in 32 GB (the size was chosen to fit).
    ap::HpcgConfig hpcg;
    EXPECT_LT(48.0 * ap::hpcg_bytes_per_rank(hpcg), 32e9);

    // COSA: ~60 GB total -> max-loaded rank at 1 A64FX node over 32 GB.
    ap::CosaConfig cosa;
    const auto d = ap::cosa_distribution(cosa, 48);
    EXPECT_GT(48.0 * ap::cosa_bytes_per_rank(cosa, d.max_blocks_per_rank), 32e9);

    // minikab: 24 plain-MPI ranks/node fit, 25+ do not (Fig 1).
    ap::MinikabConfig mk;
    mk.ranks = 48;
    EXPECT_LE(24.0 * ap::minikab_bytes_per_rank(mk), 34.36e9);
    mk.ranks = 50;
    EXPECT_GT(25.0 * ap::minikab_bytes_per_rank(mk), 34.36e9);
}
