// Tests of rank/thread placement and the memory-capacity model.

#include "arch/system.hpp"
#include "sim/placement.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

namespace as = armstice::sim;
namespace aa = armstice::arch;

TEST(Placement, BlockFillsNodesInOrder) {
    const auto p = as::Placement::block(aa::a64fx().node, 2, 96, 1);
    EXPECT_EQ(p.ranks(), 96);
    EXPECT_EQ(p.nodes(), 2);
    EXPECT_EQ(p.loc(0).node, 0);
    EXPECT_EQ(p.loc(47).node, 0);
    EXPECT_EQ(p.loc(48).node, 1);
    EXPECT_EQ(p.ranks_on_node(0), 48);
    EXPECT_EQ(p.ranks_on_node(1), 48);
}

TEST(Placement, DomainsFollowCmgBoundaries) {
    // A64FX: 4 CMGs x 12 cores.
    const auto p = as::Placement::block(aa::a64fx().node, 1, 48, 1);
    EXPECT_EQ(p.loc(0).first_domain, 0);
    EXPECT_EQ(p.loc(11).first_domain, 0);
    EXPECT_EQ(p.loc(12).first_domain, 1);
    EXPECT_EQ(p.loc(47).first_domain, 3);
    for (int d = 0; d < 4; ++d) EXPECT_EQ(p.streams_on_domain(0, d), 12);
}

TEST(Placement, ThreadsOccupyConsecutiveCores) {
    const auto p = as::Placement::block(aa::a64fx().node, 1, 4, 12);
    // Each rank owns one whole CMG.
    for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(p.loc(r).first_domain, r);
        EXPECT_EQ(p.loc(r).domains_spanned, 1);
    }
}

TEST(Placement, WideRanksSpanDomains) {
    const auto p = as::Placement::block(aa::a64fx().node, 1, 2, 24);
    EXPECT_EQ(p.loc(0).domains_spanned, 2);
    EXPECT_EQ(p.loc(1).first_domain, 2);
    EXPECT_EQ(p.streams_on_domain(0, 0), 12);
}

TEST(Placement, OversubscriptionThrows) {
    EXPECT_THROW(as::Placement::block(aa::a64fx().node, 1, 49, 1),
                 armstice::util::Error);
    EXPECT_THROW(as::Placement::block(aa::a64fx().node, 2, 10, 12),
                 armstice::util::Error);  // 5 ranks x 12 threads > 48 cores
}

TEST(Placement, UnderPopulationAllowed) {
    const auto p = as::Placement::block(aa::fulhame().node, 2, 48, 1);
    EXPECT_EQ(p.ranks_on_node(0), 24);
    EXPECT_EQ(p.streams_on_domain(0, 0), 24);  // block fill: socket 0 first
    EXPECT_EQ(p.streams_on_domain(0, 1), 0);
}

TEST(Placement, ExecContextCarriesContention) {
    const auto p = as::Placement::block(aa::ngio().node, 1, 48, 1);
    const auto ctx = p.exec_context(0, 0.8);
    EXPECT_EQ(ctx.streams_on_domain, 24);
    EXPECT_EQ(ctx.threads, 1);
    EXPECT_DOUBLE_EQ(ctx.vec_quality, 0.8);
    EXPECT_EQ(ctx.cpu, &aa::ngio().node.cpu);
}

TEST(Placement, CapacityAcceptsAndRejects) {
    const auto p = as::Placement::block(aa::a64fx().node, 1, 48, 1);
    EXPECT_NO_THROW(p.check_capacity(0.5e9));  // 24 GB total
    EXPECT_THROW(p.check_capacity(1.0e9), armstice::util::CapacityError);  // 48 GB
}

TEST(Placement, CapacityErrorIsDescriptive) {
    const auto p = as::Placement::block(aa::a64fx().node, 1, 48, 1);
    try {
        p.check_capacity(1.0e9);
        FAIL();
    } catch (const armstice::util::CapacityError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("48 ranks"), std::string::npos);
        EXPECT_NE(msg.find("GB"), std::string::npos);
    }
}

TEST(Placement, BadArgumentsThrow) {
    EXPECT_THROW(as::Placement::block(aa::a64fx().node, 0, 1, 1), armstice::util::Error);
    EXPECT_THROW(as::Placement::block(aa::a64fx().node, 1, 0, 1), armstice::util::Error);
    EXPECT_THROW(as::Placement::block(aa::a64fx().node, 1, 1, 0), armstice::util::Error);
    const auto p = as::Placement::block(aa::a64fx().node, 1, 4, 1);
    EXPECT_THROW((void)p.loc(4), armstice::util::Error);
    EXPECT_THROW((void)p.loc(-1), armstice::util::Error);
    EXPECT_THROW((void)p.ranks_on_node(1), armstice::util::Error);
    EXPECT_THROW(p.check_capacity(-1.0), armstice::util::Error);
}

TEST(Placement, RoundRobinScattersAcrossNodesAndDomains) {
    const auto p = as::Placement::round_robin(aa::a64fx().node, 2, 8, 1);
    // Ranks alternate nodes; within a node they cycle the 4 CMGs.
    EXPECT_EQ(p.loc(0).node, 0);
    EXPECT_EQ(p.loc(1).node, 1);
    EXPECT_EQ(p.ranks_on_node(0), 4);
    EXPECT_EQ(p.ranks_on_node(1), 4);
    for (int d = 0; d < 4; ++d) EXPECT_EQ(p.streams_on_domain(0, d), 1);
}

TEST(Placement, RoundRobinReducesContentionVsBlock) {
    // 6 ranks on one A64FX node: block packs them on CMG 0; scatter gives
    // at most 2 per CMG.
    const auto block = as::Placement::block(aa::a64fx().node, 1, 6, 1);
    const auto scatter = as::Placement::round_robin(aa::a64fx().node, 1, 6, 1);
    EXPECT_EQ(block.streams_on_domain(0, 0), 6);
    EXPECT_EQ(scatter.streams_on_domain(0, 0), 2);
    EXPECT_EQ(scatter.streams_on_domain(0, 3), 1);
}

TEST(Placement, RoundRobinOversubscriptionThrows) {
    EXPECT_THROW(as::Placement::round_robin(aa::a64fx().node, 2, 97, 1),
                 armstice::util::Error);
    // Thread blocks that straddle a CMG boundary collide under scatter.
    EXPECT_NO_THROW(as::Placement::round_robin(aa::a64fx().node, 1, 8, 6));
}

class PlacementSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlacementSweep, StreamsSumToRanksTimesThreads) {
    const auto [nodes, ranks, threads] = GetParam();
    const auto& node = aa::fulhame().node;
    if ((ranks + nodes - 1) / nodes * threads > node.cores()) GTEST_SKIP();
    const auto p = as::Placement::block(node, nodes, ranks, threads);
    int total = 0;
    for (int n = 0; n < nodes; ++n) {
        for (int d = 0; d < node.mem_domains(); ++d) {
            total += p.streams_on_domain(n, d);
        }
    }
    EXPECT_EQ(total, ranks * threads);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlacementSweep,
    ::testing::Values(std::tuple{1, 64, 1}, std::tuple{1, 32, 2}, std::tuple{2, 64, 2},
                      std::tuple{4, 256, 1}, std::tuple{3, 7, 5}, std::tuple{2, 2, 32},
                      std::tuple{1, 1, 64}));
