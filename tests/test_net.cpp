// Tests of the network substrate: topologies, link parameters, point-to-point
// costs and collective models.

#include "net/collectives.hpp"
#include "net/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

namespace an = armstice::net;
using armstice::arch::NetKind;

// ---- topologies -------------------------------------------------------------

class TorusSize : public ::testing::TestWithParam<int> {};

TEST_P(TorusSize, FitCoversRequestedNodes) {
    const auto t = an::TorusTopology::fit(GetParam());
    EXPECT_GE(t.nodes(), GetParam());
    EXPECT_LE(t.nodes(), 2 * GetParam() + 8);  // no absurd overshoot
}

TEST_P(TorusSize, HopsSymmetricSelfZero) {
    const auto t = an::TorusTopology::fit(GetParam());
    armstice::util::Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        const int a = static_cast<int>(rng.next_below(t.nodes()));
        const int b = static_cast<int>(rng.next_below(t.nodes()));
        EXPECT_EQ(t.hops(a, b), t.hops(b, a));
        if (a != b) {
            EXPECT_GE(t.hops(a, b), 1);
        }
    }
    EXPECT_EQ(t.hops(0, 0), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TorusSize,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 27, 48, 100));

TEST(Torus, HopsMatchManhattanWithWraparound) {
    const an::TorusTopology t({4, 4, 1});
    // node ids: x + 4*y.
    EXPECT_EQ(t.hops(0, 3), 1);   // wraparound in x: 0 -> 3 is one step back
    EXPECT_EQ(t.hops(0, 2), 2);
    EXPECT_EQ(t.hops(0, 15), 2);  // (0,0) -> (3,3): 1 + 1 via wrap
    EXPECT_EQ(t.diameter(), 4);   // (2,2) away
}

// The counting-form diameter()/mean_hops() overrides must return exactly
// what the base class's O(nodes^2) pair scans return — the scans accumulate
// small integers into a double (exact below 2^53), so the comparison is
// legitimately bitwise, not approximate. Collective pricing calls these per
// collective, and the engine now sizes jobs in the tens of thousands of
// nodes, so the overrides are load-bearing.
namespace {

int brute_diameter(const an::Topology& t) {
    int d = 0;
    for (int a = 0; a < t.nodes(); ++a)
        for (int b = a + 1; b < t.nodes(); ++b) d = std::max(d, t.hops(a, b));
    return d;
}

double brute_mean_hops(const an::Topology& t) {
    const int n = t.nodes();
    if (n < 2) return 0.0;
    double sum = 0.0;
    long count = 0;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (a == b) continue;
            sum += t.hops(a, b);
            ++count;
        }
    }
    return sum / static_cast<double>(count);
}

void expect_counting_matches_brute(const an::Topology& t) {
    EXPECT_EQ(t.diameter(), brute_diameter(t)) << t.name();
    const double brute = brute_mean_hops(t);
    const double counted = t.mean_hops();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(counted),
              std::bit_cast<std::uint64_t>(brute))
        << t.name() << ": " << counted << " vs " << brute;
}

} // namespace

TEST(TopologyStats, TorusCountingFormsMatchPairScansBitwise) {
    for (int n : {1, 2, 3, 4, 8, 16, 27, 48, 100, 125}) {
        expect_counting_matches_brute(an::TorusTopology::fit(n));
    }
    expect_counting_matches_brute(an::TorusTopology({5}));
    expect_counting_matches_brute(an::TorusTopology({2, 3}));
    expect_counting_matches_brute(an::TorusTopology({4, 4, 1}));
    expect_counting_matches_brute(an::TorusTopology({3, 4, 5}));
    expect_counting_matches_brute(an::TorusTopology({7, 1, 2}));
}

TEST(TopologyStats, FatTreeCountingFormsMatchPairScansBitwise) {
    for (auto [n, npl] : std::vector<std::pair<int, int>>{
             {1, 18}, {2, 18}, {10, 18}, {18, 18}, {19, 18},
             {36, 18}, {37, 18}, {40, 24}, {100, 24}}) {
        expect_counting_matches_brute(an::FatTreeTopology(n, npl));
    }
}

TEST(TopologyStats, DragonflyCountingFormsMatchPairScansBitwise) {
    for (int n : {1, 2, 3, 4, 5, 8, 16, 63, 64, 65, 100, 128, 200}) {
        expect_counting_matches_brute(an::DragonflyTopology(n));
    }
    // Small router/group sizes hit the partial-bucket arithmetic hard.
    for (int n : {1, 2, 3, 5, 6, 7, 12, 13, 25}) {
        expect_counting_matches_brute(an::DragonflyTopology(n, 2, 3));
    }
}

TEST(Torus, CoordsRoundTrip) {
    const an::TorusTopology t({3, 4, 5});
    for (int n = 0; n < t.nodes(); ++n) {
        const auto c = t.coords(n);
        EXPECT_EQ(static_cast<int>(c.size()), 3);
        const int back = c[0] + 3 * (c[1] + 4 * c[2]);
        EXPECT_EQ(back, n);
    }
}

TEST(Torus, RejectsBadDims) {
    EXPECT_THROW(an::TorusTopology({}), armstice::util::Error);
    EXPECT_THROW(an::TorusTopology({2, 0}), armstice::util::Error);
}

TEST(FatTree, HopClassesAreOneAndThree) {
    const an::FatTreeTopology t(36, 18);
    EXPECT_EQ(t.leaves(), 2);
    EXPECT_EQ(t.hops(0, 17), 1);   // same leaf
    EXPECT_EQ(t.hops(0, 18), 3);   // across leaves
    EXPECT_EQ(t.hops(5, 5), 0);
    EXPECT_EQ(t.diameter(), 3);
}

TEST(FatTree, SingleLeafNeverExceedsOneHop) {
    const an::FatTreeTopology t(10, 18);
    EXPECT_EQ(t.diameter(), 1);
}

TEST(Dragonfly, HopClasses) {
    const an::DragonflyTopology t(256, 4, 16);
    EXPECT_EQ(t.hops(0, 3), 1);    // same router
    EXPECT_EQ(t.hops(0, 4), 2);    // same group, different router
    EXPECT_EQ(t.hops(0, 255), 4);  // cross-group
    EXPECT_EQ(t.hops(9, 9), 0);
}

TEST(Topology, MeanHopsBetweenOneAndDiameter) {
    for (NetKind kind : {NetKind::tofud, NetKind::aries, NetKind::fdr_ib,
                         NetKind::omnipath, NetKind::edr_ib}) {
        const auto topo = an::make_topology(kind, 16);
        const double mean = topo->mean_hops();
        EXPECT_GE(mean, 1.0) << topo->name();
        EXPECT_LE(mean, topo->diameter()) << topo->name();
    }
}

// ---- link parameters & p2p ---------------------------------------------------

TEST(Link, ParamsArePlausiblePerFamily) {
    const auto tofud = an::link_params(NetKind::tofud);
    const auto edr = an::link_params(NetKind::edr_ib);
    const auto fdr = an::link_params(NetKind::fdr_ib);
    EXPECT_LT(tofud.latency_s, 2e-6);
    EXPECT_GT(edr.bandwidth, fdr.bandwidth);  // 100 vs 56 Gb/s
    EXPECT_GT(tofud.injection_bw, tofud.bandwidth);  // 6 TNIs
}

TEST(Network, SameNodeUsesSharedMemoryPath) {
    const an::Network net(NetKind::edr_ib, 4);
    const double shm = net.p2p_time(2, 2, 1e6);
    const double fabric = net.p2p_time(0, 1, 1e6);
    EXPECT_LT(shm, fabric);
}

TEST(Network, P2pLatencyPlusBandwidthForm) {
    const an::Network net(NetKind::tofud, 8);
    const double t_small = net.p2p_time(0, 1, 8);
    const double t_big = net.p2p_time(0, 1, 8e6);
    EXPECT_GT(t_small, 0.9e-6);               // latency floor
    EXPECT_NEAR(t_big - t_small, 8e6 / net.params().bandwidth, 1e-7);
}

TEST(Network, MoreHopsCostMore) {
    const an::Network net(NetKind::edr_ib, 64);  // multiple leaves
    const double near = net.p2p_time(0, 1, 0);
    const double far = net.p2p_time(0, 63, 0);
    EXPECT_GT(far, near);
}

TEST(Network, NegativeBytesRejected) {
    const an::Network net(NetKind::edr_ib, 2);
    EXPECT_THROW((void)net.p2p_time(0, 1, -1.0), armstice::util::Error);
}

// ---- collectives --------------------------------------------------------------

TEST(Collectives, SingleRankIsFree) {
    const an::Network net(NetKind::tofud, 1);
    const an::CollectiveModel coll(net);
    EXPECT_DOUBLE_EQ(coll.allreduce({1, 1}, 8), 0.0);
    EXPECT_DOUBLE_EQ(coll.barrier({1, 1}), 0.0);
    EXPECT_DOUBLE_EQ(coll.allgather({1, 1}, 100), 0.0);
    EXPECT_DOUBLE_EQ(coll.alltoall({1, 1}, 100), 0.0);
}

TEST(Collectives, AllreduceGrowsWithNodesAndBytes) {
    const an::Network net16(NetKind::tofud, 16);
    const an::CollectiveModel coll(net16);
    const double t2 = coll.allreduce({2, 48}, 8);
    const double t16 = coll.allreduce({16, 48}, 8);
    EXPECT_GT(t16, t2);
    EXPECT_GT(coll.allreduce({16, 48}, 1e6), coll.allreduce({16, 48}, 8));
}

TEST(Collectives, RabenseifnerBeatsNaiveForLargePayloads) {
    // Large allreduce must cost ~2n/B, not 2 log2(P) n/B.
    const an::Network net(NetKind::edr_ib, 16);
    const an::CollectiveModel coll(net);
    const double n = 64e6;
    const double t = coll.allreduce({16, 1}, n);
    const double naive = 2.0 * 4.0 * n / net.params().bandwidth;  // 2*log2(16)*n/B
    EXPECT_LT(t, naive);
}

TEST(Collectives, HierarchyMakesOnNodeCheap) {
    const an::Network net(NetKind::omnipath, 16);
    const an::CollectiveModel coll(net);
    const double on_node = coll.allreduce({1, 48}, 8);
    const double off_node = coll.allreduce({16, 3}, 8);
    EXPECT_LT(on_node, off_node);
}

TEST(Collectives, BarrierEqualsTinyAllreduce) {
    const an::Network net(NetKind::aries, 8);
    const an::CollectiveModel coll(net);
    EXPECT_DOUBLE_EQ(coll.barrier({8, 24}), coll.allreduce({8, 24}, 8));
}

TEST(Collectives, AllgatherLinearInRanks) {
    const an::Network net(NetKind::edr_ib, 8);
    const an::CollectiveModel coll(net);
    const double t4 = coll.allgather({4, 1}, 1e3);
    const double t8 = coll.allgather({8, 1}, 1e3);
    EXPECT_NEAR(t8 / t4, 7.0 / 3.0, 0.01);  // (P-1) steps
}

TEST(Collectives, RejectsBadInput) {
    const an::Network net(NetKind::edr_ib, 4);
    const an::CollectiveModel coll(net);
    EXPECT_THROW((void)coll.allreduce({0, 1}, 8), armstice::util::Error);
    EXPECT_THROW((void)coll.allreduce({2, 2}, -1), armstice::util::Error);
}

TEST(Collectives, NonDivisibleLayoutPricesTrueRankCount) {
    // Regression: 48 ranks block-placed on 5 nodes (10,10,10,10,8) used to be
    // priced as nodes * ranks_per_node = 50 ranks — two phantom ranks adding
    // steps to every allgather/alltoall ring. total_ranks must win.
    const an::Network net(NetKind::edr_ib, 5);
    const an::CollectiveModel coll(net);
    const an::CommLayout actual{5, 10, 48};
    const an::CommLayout phantom{5, 10, 50};
    EXPECT_EQ(actual.ranks(), 48);
    EXPECT_EQ(phantom.ranks(), 50);
    EXPECT_LT(coll.allgather(actual, 1e3), coll.allgather(phantom, 1e3));
    EXPECT_LT(coll.alltoall(actual, 1e3), coll.alltoall(phantom, 1e3));
}

TEST(Collectives, LayoutRanksPrefersTotalOverProduct) {
    const an::CommLayout legacy{4, 12};  // old two-field initialisation
    EXPECT_EQ(legacy.ranks(), 48);
    const an::CommLayout exact{5, 10, 48};
    EXPECT_EQ(exact.ranks(), 48);
}

TEST(Collectives, LayoutRejectsInconsistentTotals) {
    const an::Network net(NetKind::edr_ib, 8);
    const an::CollectiveModel coll(net);
    // More total ranks than nodes * ranks_per_node can hold.
    EXPECT_THROW((void)coll.allgather({2, 4, 9}, 8), armstice::util::Error);
    // Fewer total ranks than occupied nodes.
    EXPECT_THROW((void)coll.allgather({4, 4, 3}, 8), armstice::util::Error);
}

TEST(Collectives, AllgatherMonotoneInNodesAtFixedRanks) {
    // 48 total ranks spread over more nodes converts shared-memory ring steps
    // into fabric steps; cost must not decrease.
    const an::Network net(NetKind::tofud, 8);
    const an::CollectiveModel coll(net);
    double prev_ag = 0.0;
    double prev_a2a = 0.0;
    for (const an::CommLayout layout :
         {an::CommLayout{1, 48, 48}, an::CommLayout{2, 24, 48},
          an::CommLayout{4, 12, 48}, an::CommLayout{8, 6, 48}}) {
        const double ag = coll.allgather(layout, 4e3);
        const double a2a = coll.alltoall(layout, 4e3);
        EXPECT_GE(ag, prev_ag) << "allgather at nodes=" << layout.nodes;
        EXPECT_GE(a2a, prev_a2a) << "alltoall at nodes=" << layout.nodes;
        prev_ag = ag;
        prev_a2a = a2a;
    }
}

TEST(Collectives, MultiNodeRingMixesOnAndOffNodeSteps) {
    // With p ranks on n nodes, a ring allgather crosses the fabric ~n times;
    // the other p-1-n steps stay in shared memory. The cost must therefore sit
    // strictly between the all-shm and all-fabric extremes.
    const an::Network net(NetKind::edr_ib, 4);
    const an::CollectiveModel coll(net);
    const double bytes = 4e3;
    const double mixed = coll.allgather({4, 12, 48}, bytes);
    const double all_shm = coll.allgather({1, 48, 48}, bytes);
    const an::Network net48(NetKind::edr_ib, 48);
    const an::CollectiveModel coll48(net48);
    const double all_fabric = coll48.allgather({48, 1, 48}, bytes);
    EXPECT_GT(mixed, all_shm);
    EXPECT_LT(mixed, all_fabric);
}

class CollectiveFamilies : public ::testing::TestWithParam<NetKind> {};

TEST_P(CollectiveFamilies, AllOperationsPositiveForMultiNode) {
    const an::Network net(GetParam(), 8);
    const an::CollectiveModel coll(net);
    const an::CommLayout layout{8, 4};
    EXPECT_GT(coll.allreduce(layout, 8), 0.0);
    EXPECT_GT(coll.barrier(layout), 0.0);
    EXPECT_GT(coll.bcast(layout, 1e3), 0.0);
    EXPECT_GT(coll.allgather(layout, 1e3), 0.0);
    EXPECT_GT(coll.alltoall(layout, 1e3), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CollectiveFamilies,
                         ::testing::Values(NetKind::tofud, NetKind::aries,
                                           NetKind::fdr_ib, NetKind::omnipath,
                                           NetKind::edr_ib));
