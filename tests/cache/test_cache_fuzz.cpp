// Round-trip fuzz tests for the persistent cache: randomised SweepPoints
// and app results (seeded util::Rng, fully reproducible) must survive
// serialise -> disk -> deserialise bit-for-bit, and a warm-cache rerun of a
// sweep must be byte-identical to the cold run at --jobs 1 and --jobs 8.
// Also hammers the atomic temp-file-then-rename path with concurrent
// writers (run under -DARMSTICE_SANITIZE=address,undefined in CI).

#include "core/app_codecs.hpp"
#include "core/cache.hpp"
#include "core/runner.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace ac = armstice::core;
namespace au = armstice::util;
namespace fs = std::filesystem;

namespace {

std::string random_string(au::Rng& rng, std::size_t max_len, bool binary) {
    const std::size_t len = rng.next_below(max_len + 1);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        // Binary strings cover all 256 byte values (NUL, newline, '|', ...);
        // text strings stay printable like real app/system names.
        s.push_back(binary ? static_cast<char>(rng.next_below(256))
                           : static_cast<char>('!' + rng.next_below(94)));
    }
    return s;
}

ac::SweepPoint random_point(au::Rng& rng) {
    ac::SweepPoint p;
    p.app = random_string(rng, 12, false);
    p.system = random_string(rng, 12, false);
    p.nodes = static_cast<int>(rng.next_below(4096)) - 1;  // incl. 0 and -1
    p.ranks = static_cast<int>(rng.next_below(1 << 20));
    p.threads = static_cast<int>(rng.next_below(256));
    p.config = random_string(rng, 64, true);  // configs may embed anything
    return p;
}

double random_double(au::Rng& rng) {
    // Mix plain uniforms with exact-bit-pattern values (denormals, inf, nan
    // never appear in real results, but bit-exactness must not depend on
    // "nice" values).
    if (rng.next_below(4) == 0) return rng.uniform(-1e30, 1e30);
    return rng.next_double() * 1e-5;
}

bool bit_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

armstice::apps::AppResult random_app_result(au::Rng& rng) {
    armstice::apps::AppResult v;
    v.feasible = rng.next_below(2) == 1;
    v.note = random_string(rng, 40, true);
    v.seconds = random_double(rng);
    v.gflops = random_double(rng);
    v.run.makespan = random_double(rng);
    v.run.total_flops = random_double(rng);
    const std::size_t nranks = rng.next_below(20);
    for (std::size_t i = 0; i < nranks; ++i) {
        armstice::sim::RankStats rs;
        rs.finish = random_double(rng);
        rs.compute = random_double(rng);
        rs.recv_wait = random_double(rng);
        rs.collective_wait = random_double(rng);
        rs.injected_bytes = random_double(rng);
        rs.msgs_sent = static_cast<int>(rng.next_below(1 << 16));
        rs.msgs_received = static_cast<int>(rng.next_below(1 << 16));
        v.run.ranks.push_back(rs);
    }
    const std::size_t nphases = rng.next_below(6);
    for (std::size_t i = 0; i < nphases; ++i) {
        v.run.phase_compute["phase-" + random_string(rng, 10, false)] =
            random_double(rng);
    }
    return v;
}

void expect_app_results_equal(const armstice::apps::AppResult& a,
                              const armstice::apps::AppResult& b) {
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.note, b.note);
    EXPECT_TRUE(bit_equal(a.seconds, b.seconds));
    EXPECT_TRUE(bit_equal(a.gflops, b.gflops));
    EXPECT_TRUE(bit_equal(a.run.makespan, b.run.makespan));
    EXPECT_TRUE(bit_equal(a.run.total_flops, b.run.total_flops));
    ASSERT_EQ(a.run.ranks.size(), b.run.ranks.size());
    for (std::size_t i = 0; i < a.run.ranks.size(); ++i) {
        EXPECT_TRUE(bit_equal(a.run.ranks[i].finish, b.run.ranks[i].finish));
        EXPECT_TRUE(bit_equal(a.run.ranks[i].injected_bytes,
                              b.run.ranks[i].injected_bytes));
        EXPECT_EQ(a.run.ranks[i].msgs_sent, b.run.ranks[i].msgs_sent);
        EXPECT_EQ(a.run.ranks[i].msgs_received, b.run.ranks[i].msgs_received);
    }
    EXPECT_EQ(a.run.phase_compute.size(), b.run.phase_compute.size());
    for (const auto& [label, seconds] : a.run.phase_compute) {
        const auto it = b.run.phase_compute.find(label);
        ASSERT_NE(it, b.run.phase_compute.end()) << label;
        EXPECT_TRUE(bit_equal(seconds, it->second));
    }
}

class CacheFuzz : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(::testing::TempDir()) /
               ("armstice-fuzz-" +
                std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
        fs::remove_all(dir_);
        ac::reset_sweep_cache();
    }
    void TearDown() override {
        ac::set_cache_dir("");
        ac::reset_sweep_cache();
        fs::remove_all(dir_);
    }
    [[nodiscard]] std::string dir() const { return dir_.string(); }

    fs::path dir_;
};

} // namespace

TEST_F(CacheFuzz, SweepPointCodecRoundTrips) {
    au::Rng rng(0xfeedbeef);
    for (int iter = 0; iter < 500; ++iter) {
        const ac::SweepPoint p = random_point(rng);
        au::ByteWriter w;
        ac::ResultTraits<ac::SweepPoint>::encode(w, p);
        au::ByteReader r(w.data());
        const ac::SweepPoint q = ac::ResultTraits<ac::SweepPoint>::decode(r);
        ASSERT_TRUE(r.ok() && r.at_end()) << "iter " << iter;
        ASSERT_TRUE(p == q) << "iter " << iter;
    }
}

TEST_F(CacheFuzz, AppResultCodecRoundTrips) {
    au::Rng rng(0xc0ffee);
    for (int iter = 0; iter < 200; ++iter) {
        const auto v = random_app_result(rng);
        au::ByteWriter w;
        ac::ResultTraits<armstice::apps::AppResult>::encode(w, v);
        au::ByteReader r(w.data());
        const auto q = ac::ResultTraits<armstice::apps::AppResult>::decode(r);
        ASSERT_TRUE(r.ok() && r.at_end()) << "iter " << iter;
        expect_app_results_equal(v, q);
    }
}

TEST_F(CacheFuzz, StoreRoundTripsArbitraryPayloadsThroughDisk) {
    ac::CacheStore store(dir().c_str(), 3);
    ASSERT_TRUE(au::ensure_dir(dir()));
    au::Rng rng(0xd15c);
    for (int iter = 0; iter < 100; ++iter) {
        const std::string key = "fuzz|" + random_string(rng, 80, true);
        const std::string payload = random_string(rng, 2000, true);
        ASSERT_TRUE(store.store(key, payload)) << "iter " << iter;
        const auto got = store.load(key);
        ASSERT_TRUE(got.has_value()) << "iter " << iter;
        ASSERT_EQ(*got, payload) << "iter " << iter;
    }
}

TEST_F(CacheFuzz, DecoderSurvivesRandomMutations) {
    // Take a valid encoded AppResult and flip/truncate it at random: decode
    // must never crash, and the typed wrapper must flag every mutation that
    // leaves the stream inconsistent. (Accepting a mutation that decodes
    // cleanly is fine — the file checksum catches those before decode.)
    au::Rng rng(0xabad1dea);
    au::ByteWriter w;
    ac::ResultTraits<armstice::apps::AppResult>::encode(w, random_app_result(rng));
    const std::string valid = w.data();
    for (int iter = 0; iter < 500; ++iter) {
        std::string mutated = valid;
        if (rng.next_below(2) == 0 && !mutated.empty()) {
            mutated.resize(rng.next_below(mutated.size()));  // truncate
        }
        const std::size_t flips = 1 + rng.next_below(8);
        for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
            mutated[rng.next_below(mutated.size())] ^=
                static_cast<char>(1 + rng.next_below(255));
        }
        au::ByteReader r(mutated);
        (void)ac::ResultTraits<armstice::apps::AppResult>::decode(r);  // no crash
    }
}

TEST_F(CacheFuzz, WarmRerunIsBitIdenticalToColdAtJobs1And8) {
    ac::set_cache_dir(dir());
    std::vector<ac::SweepPoint> pts;
    for (int i = 0; i < 24; ++i) {
        pts.push_back(ac::sweep_point("warmcold", "A64FX", 1 + i % 4, 4, 12,
                                      "p" + std::to_string(i)));
    }
    // Evaluation produces "awkward" doubles so equality is a real bit test.
    const auto eval = [](const ac::SweepPoint& p, std::size_t i) {
        double v = 1.0 / (3.0 + static_cast<double>(i)) * p.nodes;
        for (int k = 0; k < 5; ++k) v = v * 1.0000001 + 1e-13;
        return v;
    };
    const auto cold = ac::SweepRunner(1).run<double>(pts, eval);

    for (const int jobs : {1, 8}) {
        ac::reset_sweep_cache();  // memo gone; only the disk knows
        const auto warm = ac::SweepRunner(jobs).run<double>(pts, eval);
        ASSERT_EQ(warm.size(), cold.size()) << "jobs " << jobs;
        for (std::size_t i = 0; i < warm.size(); ++i) {
            EXPECT_TRUE(bit_equal(warm[i], cold[i]))
                << "jobs " << jobs << " point " << i;
        }
        const auto stats = ac::sweep_stats();
        EXPECT_EQ(stats.disk_hits, 24) << "jobs " << jobs;
        EXPECT_EQ(stats.misses, 0) << "jobs " << jobs;
    }
}

TEST_F(CacheFuzz, ConcurrentWritersNeverTearEntries) {
    // Many threads flush overlapping key sets into one directory while
    // readers poll: every successful load must return one of the exact
    // payloads ever written for that key (atomic rename => no torn reads).
    ASSERT_TRUE(au::ensure_dir(dir()));
    ac::CacheStore store(dir().c_str(), 1);
    constexpr int kKeys = 8;
    const auto payload_for = [](int key, int gen) {
        std::string p = "k" + std::to_string(key) + ":g" + std::to_string(gen) + ":";
        p += std::string(512 + static_cast<std::size_t>(gen) * 7, static_cast<char>('a' + key));
        return p;
    };
    au::ThreadPool pool(8);
    std::atomic<int> bad{0};
    for (int t = 0; t < 8; ++t) {
        pool.submit([&, t] {
            au::Rng rng(static_cast<std::uint64_t>(t) + 1);
            for (int iter = 0; iter < 50; ++iter) {
                const int key = static_cast<int>(rng.next_below(kKeys));
                const int gen = static_cast<int>(rng.next_below(4));
                if (rng.next_below(2) == 0) {
                    if (!store.store("key" + std::to_string(key), payload_for(key, gen))) {
                        bad.fetch_add(1);
                    }
                } else {
                    const auto got = store.load("key" + std::to_string(key));
                    if (!got) continue;  // not written yet: fine
                    bool matches_some_generation = false;
                    for (int g = 0; g < 4; ++g) {
                        if (*got == payload_for(key, g)) matches_some_generation = true;
                    }
                    if (!matches_some_generation) bad.fetch_add(1);
                }
            }
        });
    }
    pool.wait_idle();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(store.stats().rejected, 0);  // a torn file would be rejected
    // No temp debris left behind by the atomic writes.
    int stray = 0;
    for (const auto& e : fs::directory_iterator(dir())) {
        if (e.path().extension() != ".armc") ++stray;
    }
    EXPECT_EQ(stray, 0);
}
