// Corruption-injection tests for the persistent sweep cache: every way an
// on-disk entry can be damaged — truncation, garbage bytes, stale format or
// model-version stamps, key/type mismatches, checksum failures — must
// degrade to a cache MISS with a logged warning. Never a crash, never an
// exception, and above all never a wrong result.

#include "core/app_codecs.hpp"
#include "core/cache.hpp"
#include "core/runner.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ac = armstice::core;
namespace au = armstice::util;
namespace fs = std::filesystem;

namespace {

/// Fixture: fresh temp cache directory, captured warnings, and guaranteed
/// teardown of the process-global cache/memo state.
class CacheCorruption : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(::testing::TempDir()) /
               ("armstice-cache-" +
                std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        au::set_log_sink([this](au::LogLevel level, const std::string& msg) {
            if (level >= au::LogLevel::warn) warnings_.push_back(msg);
        });
        ac::reset_sweep_cache();
    }

    void TearDown() override {
        ac::set_cache_dir("");
        ac::reset_sweep_cache();
        au::set_log_sink(nullptr);
        fs::remove_all(dir_);
    }

    [[nodiscard]] std::string dir() const { return dir_.string(); }

    [[nodiscard]] bool warned_containing(const std::string& needle) const {
        for (const auto& w : warnings_) {
            if (w.find(needle) != std::string::npos) return true;
        }
        return false;
    }

    /// Overwrite an entry file with raw bytes (binary-safe).
    static void overwrite(const std::string& path, const std::string& bytes) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
    std::vector<std::string> warnings_;
};

} // namespace

TEST_F(CacheCorruption, RoundTripHits) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k1", "payload-bytes"));
    const auto got = store.load("k1");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "payload-bytes");
    const auto s = store.stats();
    EXPECT_EQ(s.probes, 1);
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.rejected, 0);
    EXPECT_TRUE(warnings_.empty());
}

TEST_F(CacheCorruption, MissingEntryIsAQuietMiss) {
    ac::CacheStore store(dir(), 7);
    EXPECT_FALSE(store.load("never-stored").has_value());
    EXPECT_EQ(store.stats().rejected, 0);  // nothing on disk = plain miss
    EXPECT_TRUE(warnings_.empty());        // and not worth a warning
}

TEST_F(CacheCorruption, TruncatedFileIsALoggedMiss) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k", "a payload long enough to truncate"));
    const std::string path = store.path_for("k");
    const auto bytes = au::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    for (const std::size_t keep : {bytes->size() - 1, bytes->size() / 2,
                                   std::size_t{5}, std::size_t{0}}) {
        overwrite(path, bytes->substr(0, keep));
        warnings_.clear();
        EXPECT_FALSE(store.load("k").has_value()) << "kept " << keep << " bytes";
        EXPECT_TRUE(warned_containing("cache:")) << "kept " << keep << " bytes";
    }
    EXPECT_GE(store.stats().rejected, 4);
}

TEST_F(CacheCorruption, GarbageBytesAreALoggedMiss) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k", "payload"));
    overwrite(store.path_for("k"), "this is not an ARMC cache entry at all");
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_TRUE(warned_containing("bad magic"));
}

TEST_F(CacheCorruption, StaleModelVersionIsALoggedMiss) {
    // An entry written under model version 7 must not be served to a model
    // stamped 8 — that is the whole invalidation story.
    ac::CacheStore old_model(dir(), 7);
    ASSERT_TRUE(old_model.store("k", "payload"));
    ac::CacheStore new_model(dir(), 8);
    EXPECT_FALSE(new_model.load("k").has_value());
    EXPECT_TRUE(warned_containing("model version mismatch"));
    // Same bytes, matching stamp: still loads.
    EXPECT_TRUE(old_model.load("k").has_value());
}

TEST_F(CacheCorruption, WrongResultTypeKeyIsALoggedMiss) {
    // Simulate a hash collision / wrong-type lookup: the file exists where
    // key B hashes to, but records key A. The stored full key must veto it.
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("app-result|minikab|A64FX|n2|r8|t12|cfg", "payload"));
    const std::string wrong_key = "hpcg-outcome|minikab|A64FX|n2|r8|t12|cfg";
    fs::copy_file(store.path_for("app-result|minikab|A64FX|n2|r8|t12|cfg"),
                  store.path_for(wrong_key), fs::copy_options::overwrite_existing);
    EXPECT_FALSE(store.load(wrong_key).has_value());
    EXPECT_TRUE(warned_containing("key mismatch"));
}

TEST_F(CacheCorruption, FlippedPayloadByteFailsChecksum) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k", std::string(64, 'x')));
    const std::string path = store.path_for("k");
    auto bytes = au::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[bytes->size() - 10] ^= 0x5a;  // corrupt inside the payload
    overwrite(path, *bytes);
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_TRUE(warned_containing("checksum"));
}

TEST_F(CacheCorruption, TrailingGarbageIsALoggedMiss) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k", "payload"));
    const std::string path = store.path_for("k");
    auto bytes = au::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    overwrite(path, *bytes + "extra bytes after the payload");
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_TRUE(warned_containing("cache:"));
}

TEST_F(CacheCorruption, StaleCacheFormatVersionIsALoggedMiss) {
    ac::CacheStore store(dir(), 7);
    ASSERT_TRUE(store.store("k", "payload"));
    const std::string path = store.path_for("k");
    auto bytes = au::read_file(path);
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[4] = static_cast<char>(ac::CacheStore::kFormatVersion + 1);
    overwrite(path, *bytes);
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_TRUE(warned_containing("format version"));
}

TEST_F(CacheCorruption, UncreatableCacheDirDisablesDiskCaching) {
    // A plain file where the directory should go makes mkdir fail; the
    // sweep must keep working with disk caching off.
    const std::string blocker = (dir_ / "blocker").string();
    overwrite(blocker, "file, not a directory");
    ac::set_cache_dir(blocker);
    EXPECT_EQ(ac::cache_store(), nullptr);
    EXPECT_TRUE(warned_containing("cannot create cache dir"));
    const auto out = ac::SweepRunner(1).run<int>(
        {ac::sweep_point("t", "s", 1, 1, 1, "c")},
        [](const ac::SweepPoint&, std::size_t) { return 11; });
    EXPECT_EQ(out[0], 11);
}

// ---- end-to-end: SweepRunner over a damaged cache directory ----------------

namespace {

std::vector<ac::SweepPoint> corruption_points() {
    std::vector<ac::SweepPoint> pts;
    for (int i = 0; i < 6; ++i) {
        pts.push_back(ac::sweep_point("corrupt-e2e", "A64FX", 1, 1, 1,
                                      "p" + std::to_string(i)));
    }
    return pts;
}

} // namespace

TEST_F(CacheCorruption, SweepRecomputesThroughDamagedEntries) {
    ac::set_cache_dir(dir());
    const auto pts = corruption_points();
    const auto eval = [](const ac::SweepPoint& p, std::size_t) {
        return static_cast<double>(p.config.size()) * 1.25 + p.nodes;
    };
    const auto cold = ac::SweepRunner(1).run<double>(pts, eval);
    ASSERT_EQ(ac::cache_store()->stats().stores, 6);

    // Damage every entry a different way.
    ac::CacheStore* store = ac::cache_store();
    std::vector<std::string> paths;
    paths.reserve(pts.size());
    for (const auto& p : pts) {
        paths.push_back(store->path_for(std::string("f64") + '|' + p.key()));
    }
    fs::remove(paths[0]);                        // deleted
    overwrite(paths[1], "");                     // zero length
    overwrite(paths[2], "garbage");              // not a cache entry
    auto bytes = au::read_file(paths[3]);
    ASSERT_TRUE(bytes.has_value());
    overwrite(paths[3], bytes->substr(0, bytes->size() / 2));  // truncated
    bytes = au::read_file(paths[4]);
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[8] ^= 0x7f;                         // model-version stamp bits
    overwrite(paths[4], *bytes);
    // paths[5] stays valid.

    ac::reset_sweep_cache();  // force disk probes (memo cache cleared)
    const auto warm = ac::SweepRunner(1).run<double>(pts, eval);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i], cold[i]) << "point " << i;  // bit-exact either way
    }
    const auto stats = ac::sweep_stats();
    EXPECT_EQ(stats.disk_hits, 1);    // only the intact entry
    EXPECT_EQ(stats.misses, 5);       // all damaged ones re-evaluated
    EXPECT_TRUE(warned_containing("cache:"));

    // The re-evaluation must have healed the cache: next cold process (memo
    // cleared again) hits all six on disk.
    ac::reset_sweep_cache();
    (void)ac::SweepRunner(1).run<double>(pts, eval);
    EXPECT_EQ(ac::sweep_stats().disk_hits, 6);
}

TEST_F(CacheCorruption, UndecodablePayloadFallsBackToEvaluation) {
    // A file can be pristine at the CacheStore layer (magic, stamp, key,
    // checksum all good) yet hold bytes the result codec rejects — e.g.
    // written by a buggy producer. The typed layer must re-evaluate.
    ac::set_cache_dir(dir());
    const auto pt = ac::sweep_point("undecodable", "A64FX", 1, 1, 1, "c");
    const std::string key = std::string("sweep-point") + '|' + pt.key();
    ASSERT_TRUE(ac::cache_store()->store(key, "not a sweep point"));
    const auto out = ac::SweepRunner(1).run<ac::SweepPoint>(
        {pt}, [](const ac::SweepPoint& p, std::size_t) { return p; });
    EXPECT_TRUE(out[0] == pt);
    EXPECT_TRUE(warned_containing("undecodable"));
    EXPECT_EQ(ac::sweep_stats().disk_hits, 0);
    EXPECT_EQ(ac::sweep_stats().misses, 1);
}
