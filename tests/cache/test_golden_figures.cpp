// Golden-figure regression tests: regenerate every figure's CSV data
// in-process and diff it against the CSV committed at the repo root. Any
// model drift — a calibration tweak, a cost-model change, a collective
// repricing — now fails ctest with the first differing line instead of
// silently changing the published SVGs. When a model change is intentional,
// regenerate the artefacts (run the fig* bench binaries from the repo root)
// and bump arch::kModelVersion so stale persistent caches invalidate too.

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "util/fileio.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#ifndef ARMSTICE_SOURCE_DIR
#error "tests/cache must be compiled with -DARMSTICE_SOURCE_DIR=<repo root>"
#endif

namespace ac = armstice::core;
namespace au = armstice::util;

namespace {

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
    return lines;
}

/// Diff `fresh` against the committed golden file, reporting the first
/// mismatching line (whole-string EXPECT_EQ output is unreadable here).
void expect_matches_golden(const std::string& fresh, const std::string& name) {
    const std::string path = std::string(ARMSTICE_SOURCE_DIR) + "/" + name;
    const auto golden = au::read_file(path);
    ASSERT_TRUE(golden.has_value()) << "missing golden file " << path;
    if (fresh == *golden) return;

    const auto got = lines_of(fresh);
    const auto want = lines_of(*golden);
    const std::size_t n = std::min(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i])
            << name << " drifted at line " << (i + 1)
            << " — if the model change is intentional, regenerate the fig*"
            << " artefacts and bump arch::kModelVersion";
    }
    FAIL() << name << ": line count changed (" << want.size() << " committed vs "
           << got.size() << " regenerated)";
}

} // namespace

TEST(GoldenFigures, Fig1MinikabConfigs) {
    expect_matches_golden(ac::fig1_csv(ac::run_fig1()), "fig1.csv");
}

TEST(GoldenFigures, Fig2MinikabScaling) {
    expect_matches_golden(ac::fig2_csv(ac::run_fig2()), "fig2.csv");
}

TEST(GoldenFigures, Fig3NekboneCores) {
    expect_matches_golden(ac::fig3_csv(ac::run_fig3()), "fig3.csv");
}

TEST(GoldenFigures, Fig4CosaScaling) {
    expect_matches_golden(ac::fig4_csv(ac::run_fig4()), "fig4.csv");
}

TEST(GoldenFigures, Fig5CastepCores) {
    expect_matches_golden(ac::fig5_csv(ac::run_fig5()), "fig5.csv");
}
