// Bench-facing wiring of the persistent cache: --cache-dir / ARMSTICE_CACHE
// extraction (mirrors the --jobs tests in tests/test_runner.cpp) and the
// footer lines the acceptance criteria key off.

#include "core/cache.hpp"
#include "core/runner.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace ac = armstice::core;
namespace au = armstice::util;

namespace {

/// Mutable argv for cache_dir_from_args (which rewrites it in place).
struct Argv {
    explicit Argv(std::initializer_list<const char*> args) {
        for (const char* a : args) storage.emplace_back(a);
        for (auto& s : storage) ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(storage.size());
    }
    std::vector<std::string> storage;
    std::vector<char*> ptrs;
    int argc = 0;
};

} // namespace

TEST(CacheDirFromArgs, SpaceAndEqualsSyntaxBothConsume) {
    unsetenv("ARMSTICE_CACHE");
    Argv a{"bench", "--cache-dir", "/tmp/c", "--other"};
    EXPECT_EQ(au::cache_dir_from_args(a.argc, a.ptrs.data()), "/tmp/c");
    EXPECT_EQ(a.argc, 2);
    EXPECT_STREQ(a.ptrs[0], "bench");
    EXPECT_STREQ(a.ptrs[1], "--other");
    EXPECT_EQ(a.ptrs[2], nullptr);

    Argv b{"bench", "--cache-dir=/tmp/d"};
    EXPECT_EQ(au::cache_dir_from_args(b.argc, b.ptrs.data()), "/tmp/d");
    EXPECT_EQ(b.argc, 1);
}

TEST(CacheDirFromArgs, AbsentMeansDisabled) {
    unsetenv("ARMSTICE_CACHE");
    Argv a{"bench", "--benchmark_filter=x"};
    EXPECT_EQ(au::cache_dir_from_args(a.argc, a.ptrs.data()), "");
    EXPECT_EQ(a.argc, 2);  // untouched
}

TEST(CacheDirFromArgs, EnvironmentFallback) {
    setenv("ARMSTICE_CACHE", "/tmp/envcache", 1);
    Argv a{"bench"};
    EXPECT_EQ(au::cache_dir_from_args(a.argc, a.ptrs.data()), "/tmp/envcache");
    unsetenv("ARMSTICE_CACHE");
}

TEST(CacheDirFromArgs, FlagBeatsEnvironment) {
    setenv("ARMSTICE_CACHE", "/tmp/envcache", 1);
    Argv a{"bench", "--cache-dir", "/tmp/flagcache"};
    EXPECT_EQ(au::cache_dir_from_args(a.argc, a.ptrs.data()), "/tmp/flagcache");
    unsetenv("ARMSTICE_CACHE");
}

TEST(CacheDirFromArgs, RejectsMissingValue) {
    {
        Argv a{"bench", "--cache-dir"};
        EXPECT_THROW((void)au::cache_dir_from_args(a.argc, a.ptrs.data()), au::Error);
    }
    {
        Argv a{"bench", "--cache-dir="};
        EXPECT_THROW((void)au::cache_dir_from_args(a.argc, a.ptrs.data()), au::Error);
    }
}

TEST(CacheFooter, ReportsDiskHitRateWhenCacheEnabled) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir()) / "armstice-footer-cache";
    fs::remove_all(dir);
    ac::reset_sweep_cache();
    ac::set_cache_dir(dir.string());
    ASSERT_NE(ac::cache_store(), nullptr);

    std::vector<ac::SweepPoint> pts;
    for (int i = 0; i < 5; ++i) {
        pts.push_back(ac::sweep_point("footer", "A64FX", 1, 1, 1,
                                      "p" + std::to_string(i)));
    }
    const auto eval = [](const ac::SweepPoint&, std::size_t i) {
        return static_cast<int>(i);
    };
    (void)ac::SweepRunner(1).run<int>(pts, eval);
    ac::reset_sweep_cache();  // second "process": memo cold, disk warm
    (void)ac::SweepRunner(1).run<int>(pts, eval);

    const std::string footer = ac::sweep_footer();
    EXPECT_NE(footer.find("[sweep]"), std::string::npos) << footer;
    EXPECT_NE(footer.find("5 disk cache hits"), std::string::npos) << footer;
    EXPECT_NE(footer.find("[cache]"), std::string::npos) << footer;
    EXPECT_NE(footer.find("5/5 disk probes hit (100.0% disk-hit rate)"),
              std::string::npos)
        << footer;

    ac::set_cache_dir("");
    ac::reset_sweep_cache();
    fs::remove_all(dir);
    EXPECT_EQ(ac::sweep_footer().find("[cache]"), std::string::npos);
}
