// Tests of the discrete-event engine: MPI semantics (matching, blocking,
// collectives), time accounting, determinism, deadlock detection.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace as = armstice::sim;
namespace aa = armstice::arch;

namespace {

/// Engine on N Fulhame ranks (1 node) with OS noise off for exact arithmetic.
as::Engine make_engine(int ranks, int nodes = 1) {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto placement = as::Placement::block(aa::fulhame().node, nodes, ranks, 1);
    return as::Engine(aa::fulhame(), std::move(placement), 0.8, knobs);
}

aa::ComputePhase work(double flops) {
    aa::ComputePhase p;
    p.label = "w";
    p.flops = flops;
    p.vector_fraction = 0.0;
    return p;
}

} // namespace

TEST(Engine, ComputeTimeMatchesCostModel) {
    const auto engine = make_engine(1);
    std::vector<as::Program> progs(1);
    progs[0].compute(work(8.8e9));  // 1 second at 4 flops/cycle * 2.2 GHz
    const auto res = engine.run(progs);
    EXPECT_NEAR(res.makespan, 1.0, 1e-9);
    EXPECT_NEAR(res.ranks[0].compute, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(res.total_flops, 8.8e9);
}

TEST(Engine, GflopsIsFlopsOverMakespan) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].compute(work(8.8e9));
    progs[1].compute(work(8.8e9));
    const auto res = engine.run(progs);
    EXPECT_NEAR(res.gflops(), 2.0 * 8.8, 1e-6);
}

TEST(Engine, SendRecvDeliversAndTimesWait) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].compute(work(8.8e9)).send(1, 1e3);
    progs[1].recv(0);
    const auto res = engine.run(progs);
    // Rank 1 must wait ~1 s for rank 0's message.
    EXPECT_GT(res.ranks[1].recv_wait, 0.9);
    EXPECT_EQ(res.ranks[1].msgs_received, 1);
    EXPECT_EQ(res.ranks[0].msgs_sent, 1);
    EXPECT_GT(res.ranks[1].finish, 1.0);
}

TEST(Engine, EagerSendDoesNotBlockSender) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].send(1, 1e3);                     // no matching recv for a while
    progs[1].compute(work(8.8e9)).recv(0);
    const auto res = engine.run(progs);
    EXPECT_LT(res.ranks[0].finish, 0.01);  // sender finished immediately
    EXPECT_NEAR(res.ranks[1].finish, 1.0, 0.01);  // message already arrived
}

TEST(Engine, TagMatchingIsSelective) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].send(1, 8, /*tag=*/7).send(1, 8, /*tag=*/9);
    progs[1].recv(0, /*tag=*/9).recv(0, /*tag=*/7);  // reverse order
    EXPECT_NO_THROW(engine.run(progs));
}

TEST(Engine, AnySourceMatchesFirstArrival) {
    const auto engine = make_engine(3);
    std::vector<as::Program> progs(3);
    progs[0].compute(work(8.8e9)).send(2, 8);
    progs[1].send(2, 8);
    progs[2].recv(as::kAnySource).recv(as::kAnySource);
    const auto res = engine.run(progs);
    EXPECT_EQ(res.ranks[2].msgs_received, 2);
}

TEST(Engine, FifoPerSourceOrdering) {
    // Two same-tag messages from one source must be consumed in order; the
    // receiver computes between receives, so arrival times differ.
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].send(1, 8).compute(work(8.8e9)).send(1, 8);
    progs[1].recv(0).recv(0);
    const auto res = engine.run(progs);
    EXPECT_GT(res.ranks[1].finish, 1.0);  // second message gated by compute
}

TEST(Engine, AllreduceSynchronisesAtMaxArrival) {
    const auto engine = make_engine(3);
    std::vector<as::Program> progs(3);
    progs[0].compute(work(8.8e9)).allreduce(8);
    progs[1].compute(work(4.4e9)).allreduce(8);
    progs[2].allreduce(8);
    const auto res = engine.run(progs);
    for (const auto& r : res.ranks) EXPECT_GT(r.finish, 1.0);
    // The idle rank waited ~1 s inside the collective.
    EXPECT_GT(res.ranks[2].collective_wait, 0.99);
    // All finish at the same instant.
    EXPECT_NEAR(res.ranks[0].finish, res.ranks[2].finish, 1e-9);
}

TEST(Engine, BarrierAndAlltoallSynchronise) {
    const auto engine = make_engine(4);
    std::vector<as::Program> progs(4);
    for (int r = 0; r < 4; ++r) {
        progs[static_cast<std::size_t>(r)]
            .compute(work(1e9 * (r + 1)))
            .barrier()
            .alltoall(1e3);
    }
    const auto res = engine.run(progs);
    for (int r = 1; r < 4; ++r) {
        EXPECT_NEAR(res.ranks[0].finish, res.ranks[static_cast<std::size_t>(r)].finish,
                    1e-9);
    }
}

TEST(Engine, MismatchedCollectivesThrow) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].allreduce(8);
    progs[1].allreduce(64);  // different payload at the same ordinal
    EXPECT_THROW((void)engine.run(progs), armstice::util::Error);
}

TEST(Engine, BarrierVsAllreduceMismatchThrows) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].allreduce(8);
    progs[1].barrier();
    EXPECT_THROW((void)engine.run(progs), armstice::util::Error);
}

TEST(Engine, DeadlockDetected) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].recv(1);  // nobody ever sends
    progs[1].recv(0);
    EXPECT_THROW((void)engine.run(progs), armstice::util::DeadlockError);
}

TEST(Engine, PartialCollectiveDeadlockDetected) {
    const auto engine = make_engine(3);
    std::vector<as::Program> progs(3);
    progs[0].allreduce(8);
    progs[1].allreduce(8);
    // rank 2 never joins.
    EXPECT_THROW((void)engine.run(progs), armstice::util::DeadlockError);
}

TEST(Engine, DeterministicAcrossRuns) {
    aa::ModelKnobs knobs;  // noise ON — must still be deterministic
    auto placement = as::Placement::block(aa::a64fx().node, 2, 96, 1);
    const as::Engine engine(aa::a64fx(), std::move(placement), 0.6, knobs);
    std::vector<as::Program> progs(96);
    for (int r = 0; r < 96; ++r) {
        progs[static_cast<std::size_t>(r)].compute(work(1e9)).allreduce(8).compute(
            work(2e9));
    }
    const auto r1 = engine.run(progs);
    const auto r2 = engine.run(progs);
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
    EXPECT_DOUBLE_EQ(r1.ranks[37].finish, r2.ranks[37].finish);
}

TEST(Engine, MarkLabelsAggregatePhaseTime) {
    const auto engine = make_engine(1);
    std::vector<as::Program> progs(1);
    progs[0].mark("phase-a").compute(work(8.8e9)).mark("phase-b").compute(work(8.8e9));
    const auto res = engine.run(progs);
    EXPECT_NEAR(res.phase_compute.at("phase-a"), 1.0, 1e-9);
    EXPECT_NEAR(res.phase_compute.at("phase-b"), 1.0, 1e-9);
}

TEST(Engine, MakespanIsMaxFinish) {
    const auto engine = make_engine(3);
    std::vector<as::Program> progs(3);
    progs[0].compute(work(1e9));
    progs[1].compute(work(5e9));
    progs[2].compute(work(3e9));
    const auto res = engine.run(progs);
    EXPECT_DOUBLE_EQ(res.makespan, res.ranks[1].finish);
}

TEST(Engine, ProgramCountMismatchThrows) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(1);
    EXPECT_THROW((void)engine.run(progs), armstice::util::Error);
}

TEST(Engine, OsNoiseStretchesButBoundedly) {
    auto placement = as::Placement::block(aa::fulhame().node, 1, 32, 1);
    aa::ModelKnobs noisy;  // default 0.012
    aa::ModelKnobs quiet;
    quiet.os_noise = 0.0;
    const as::Engine e_noisy(aa::fulhame(), placement, 0.8, noisy);
    const as::Engine e_quiet(aa::fulhame(), std::move(placement), 0.8, quiet);
    std::vector<as::Program> progs(32);
    for (auto& p : progs) p.compute(work(1e9)).allreduce(8);
    const double tn = e_noisy.run(progs).makespan;
    const double tq = e_quiet.run(progs).makespan;
    EXPECT_GT(tn, tq);
    EXPECT_LT(tn, tq * 1.2);  // noise is a percent-level effect
}

TEST(Engine, CrossNodeMessagesSlowerThanShm) {
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto p2 = as::Placement::block(aa::fulhame().node, 2, 2, 1);  // ranks on 2 nodes
    const as::Engine cross(aa::fulhame(), std::move(p2), 0.8, knobs);
    auto p1 = as::Placement::block(aa::fulhame().node, 1, 2, 1);
    const as::Engine local(aa::fulhame(), std::move(p1), 0.8, knobs);
    std::vector<as::Program> progs(2);
    progs[0].send(1, 1e6);
    progs[1].recv(0);
    EXPECT_GT(cross.run(progs).makespan, local.run(progs).makespan);
}

TEST(Engine, CollectiveLayoutUsesTrueOccupancy) {
    // Regression: 48 ranks block-placed on 5 nodes (10,10,10,10,8) were
    // priced via ceil(48/5) = 10 ranks/node on 5 nodes = 50 ranks. The layout
    // must carry the true total so alltoall runs 47 rounds, not 49.
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto placement = as::Placement::block(aa::fulhame().node, 5, 48, 1);
    const as::Engine engine(aa::fulhame(), std::move(placement), 0.8, knobs);
    std::vector<as::Program> progs(48);
    const double bytes = 2e3;
    for (auto& p : progs) p.alltoall(bytes);
    const auto res = engine.run(progs);

    const armstice::net::CollectiveModel coll(engine.network());
    // Occupancies are (10,10,10,10,8): the layout carries min occupancy 8,
    // whose ranks cross the fabric for 40 of the 47 rounds.
    EXPECT_DOUBLE_EQ(res.makespan, coll.alltoall({5, 10, 48, 8}, bytes));
    EXPECT_LT(res.makespan, coll.alltoall({5, 10, 50}, bytes));
}

TEST(Engine, EmptyNodesDoNotAddCollectiveStages) {
    // 4 ranks block-placed onto 5 nodes leave the fifth node empty; the
    // collective layout must see 4 occupied nodes, making the run identical
    // to an honest 4-node job (same fat-tree class on Fulhame at this size).
    aa::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    auto sparse = as::Placement::block(aa::fulhame().node, 5, 4, 1);
    auto dense = as::Placement::block(aa::fulhame().node, 4, 4, 1);
    const as::Engine e_sparse(aa::fulhame(), std::move(sparse), 0.8, knobs);
    const as::Engine e_dense(aa::fulhame(), std::move(dense), 0.8, knobs);
    std::vector<as::Program> progs(4);
    for (auto& p : progs) p.allreduce(64).alltoall(1e3);
    EXPECT_DOUBLE_EQ(e_sparse.run(progs).makespan, e_dense.run(progs).makespan);
}

TEST(Engine, ConcurrentRunsAreBitIdentical) {
    // SweepRunner calls Engine::run from pool threads; the same engine run
    // concurrently from 8 threads must produce bit-identical results (noise
    // ON — the samples are pure functions of (rank, op), not shared state).
    aa::ModelKnobs knobs;  // default noise
    auto placement = as::Placement::block(aa::a64fx().node, 2, 96, 1);
    const as::Engine engine(aa::a64fx(), std::move(placement), 0.6, knobs);
    std::vector<as::Program> progs(96);
    for (int r = 0; r < 96; ++r) {
        progs[static_cast<std::size_t>(r)]
            .compute(work(1e9 * (1 + r % 3)))
            .allreduce(8)
            .send((r + 1) % 96, 1e3)
            .recv((r + 95) % 96)
            .alltoall(256);
    }
    const auto baseline = engine.run(progs);

    constexpr int kThreads = 8;
    std::vector<as::RunResult> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&engine, &progs, &results, t] {
            results[static_cast<std::size_t>(t)] = engine.run(progs);
        });
    }
    for (auto& t : threads) t.join();

    for (const auto& res : results) {
        ASSERT_EQ(res.ranks.size(), baseline.ranks.size());
        EXPECT_DOUBLE_EQ(res.makespan, baseline.makespan);
        EXPECT_DOUBLE_EQ(res.total_flops, baseline.total_flops);
        for (std::size_t r = 0; r < res.ranks.size(); ++r) {
            EXPECT_DOUBLE_EQ(res.ranks[r].finish, baseline.ranks[r].finish);
            EXPECT_DOUBLE_EQ(res.ranks[r].compute, baseline.ranks[r].compute);
            EXPECT_DOUBLE_EQ(res.ranks[r].recv_wait, baseline.ranks[r].recv_wait);
            EXPECT_DOUBLE_EQ(res.ranks[r].collective_wait,
                             baseline.ranks[r].collective_wait);
        }
        EXPECT_EQ(res.phase_compute, baseline.phase_compute);
    }
}

TEST(Engine, RecvWaitZeroWhenMessageEarly) {
    const auto engine = make_engine(2);
    std::vector<as::Program> progs(2);
    progs[0].send(1, 8);
    progs[1].compute(work(8.8e9)).recv(0);
    const auto res = engine.run(progs);
    EXPECT_LT(res.ranks[1].recv_wait, 1e-6);
}
